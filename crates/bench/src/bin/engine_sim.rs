//! `engine_sim` — trace-replay driver for the streaming admission-control
//! engine.
//!
//! Generates a deterministic arrival trace (Poisson by default; diurnal /
//! flash-crowd / churn variants via flags), replays it through
//! [`ufp_engine::Engine`] on a random `G(n, m)` network, and prints a
//! summary table. Everything written to **stdout** is a deterministic
//! function of the flags (two runs with the same seed are byte-identical);
//! wall-clock figures (latency percentiles, throughput) go to stderr.
//! Exception: under `--json` the emitted document carries a `"timing"`
//! object (total wall-clock, latency percentiles, throughput) that is
//! explicitly *not* deterministic — strip it before byte-comparing runs.
//!
//! Payments: `--payments critical` prices every admission with
//! prefix-resumed critical-value bisection; `--payments critical-naive`
//! runs the full-rerun baseline (bit-identical revenue, superlinearly
//! slower — kept for speedup measurements like `BENCH_PR2.json`).
//!
//! Selection: `--selection incremental` (default) drives each epoch's
//! argmin with the dirty-set path cache + lazy score heap;
//! `--selection fanout` re-queries every remaining request every
//! iteration (the paper-literal loop). The two are bit-identical on
//! every deterministic output — only the `"selection"` config field and
//! the `"timing"` object differ between runs (`BENCH_PR4.json` records
//! the speedups).
//!
//! Observability: `--trace-out FILE` (span JSONL), `--trace-chrome
//! FILE` (chrome://tracing), `--metrics-out FILE` (registry + epoch
//! profiles), and `--profile` (per-epoch phase breakdown inside the
//! `"timing"` object) all enable the `ufp_obs` recorder. Strictly
//! out-of-band: the deterministic stdout document is byte-identical
//! with tracing on or off (CI enforces the diff), and exports go to
//! side files only.
//!
//! Auction health: `--regret-every K` runs the out-of-band regret
//! oracle every K-th epoch (online value vs the offline fractional
//! optimum of the same frozen epoch snapshot), `--slo-us T` accounts
//! per-epoch admission latency against an SLO threshold, and
//! `--health-out FILE` writes the whole registry — health gauges,
//! regret samples, alerts — as Prometheus text exposition (and enables
//! the starvation / eviction-storm watermarks). All three enable the
//! recorder and are byte-invisible to the deterministic stdout document
//! (same CI contract as tracing); under `--profile`, each epoch's
//! stderr line additionally carries its regret verdict and any repair
//! phases (`topology.apply` / `repair.evict` / `repair.readmit`).
//!
//! Durability: `--snapshot-every K --snapshot-dir DIR` persists the
//! engine every `K` epochs; `--stop-after J` aborts the replay after
//! epoch `J` (a simulated crash — snapshots already on disk survive);
//! `--restore-from DIR` recovers from the newest loadable snapshot,
//! verifies the driver fingerprint (same trace flags, same seed), and
//! replays only the epochs after the snapshot's watermark. A
//! crash-and-restore run's deterministic output (`--json` minus the
//! `"timing"` object) is **byte-identical** to the unbroken run's.
//!
//! Failure injection: `--fail-trace SEED` generates a deterministic
//! per-epoch [`TopologyEvent`] stream (`--flap-rate` independent link
//! flaps, `--resize-rate` capacity rescales, `--outage-rate` correlated
//! regional outages, repeatable `--drain NODE,START,DURATION` planned
//! maintenance windows) and applies each epoch's batch through the
//! engine's repair pass before that epoch's arrivals: evictions are
//! priced and refunded through the event log, and re-admission
//! candidates rejoin the arrival stream ahead of the next scheduled
//! batch. The snapshot's own topology event log is the restore-time
//! authority: a snapshot whose log is an ancestor of the regenerated
//! trace is migrated forward (typed migration, reported on stderr); a
//! divergent log is refused with the typed `GraphMismatch` error and a
//! nonzero exit code.
//!
//! ```text
//! cargo run -p ufp-bench --release --bin engine_sim
//! cargo run -p ufp-bench --release --bin engine_sim -- \
//!     --nodes 1000 --edges 5000 --epochs 200 --mean 550 --seed 7 \
//!     --process diurnal --churn 20,60 --payments critical --json
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ufp_bench::table::{f2, Table};
use ufp_core::StopReason;
use ufp_engine::codec::{CodecError, Fnv64, Reader, Writer};
use ufp_engine::{
    Arrival, Engine, EngineConfig, EpochReport, EventLevel, PaymentPolicy, SelectionStrategy,
    SnapshotStore, Topology, TopologyError, TopologyEvent, TopologyReport,
};
use ufp_netgraph::generators;
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_par::Pool;
use ufp_shard::{
    EdgeCut, HotspotPairs, NodeBlocks, Partitioner, PaymentScope, ShardConfig, ShardStats,
    ShardedEngine,
};
use ufp_workloads::arrivals::{arrival_trace, ArrivalProcess, ArrivalTraceConfig};
use ufp_workloads::failures::{failure_trace, DrainWindow, FailureTraceConfig};
use ufp_workloads::random_ufp::required_b;
use ufp_workloads::sharded::{block_shard_map, sharded_arrival_trace, ShardedTraceConfig};

struct Options {
    nodes: usize,
    edges: usize,
    epochs: usize,
    mean: f64,
    hotspots: usize,
    epsilon: f64,
    seed: u64,
    process: String,
    churn: Option<(u32, u32)>,
    payments: String,
    selection: String,
    json: bool,
    threads: usize,
    snapshot_every: Option<usize>,
    snapshot_dir: Option<String>,
    restore_from: Option<String>,
    stop_after: Option<usize>,
    shards: usize,
    partitioner: String,
    communities: usize,
    inter_edges: usize,
    cross_fraction: f64,
    cross_unroutable: bool,
    lease_fraction: f64,
    payment_scope: String,
    trace_out: Option<String>,
    trace_chrome: Option<String>,
    metrics_out: Option<String>,
    profile: bool,
    fail_seed: Option<u64>,
    flap_rate: f64,
    resize_rate: f64,
    outage_rate: f64,
    outage_radius: u32,
    drains: Vec<DrainWindow>,
    health_out: Option<String>,
    regret_every: u64,
    slo_us: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            nodes: 1000,
            edges: 5000,
            epochs: 200,
            mean: 550.0,
            hotspots: 32,
            epsilon: 0.5,
            seed: 7,
            process: "poisson".to_string(),
            churn: None,
            payments: "none".to_string(),
            selection: "incremental".to_string(),
            json: false,
            threads: 1,
            snapshot_every: None,
            snapshot_dir: None,
            restore_from: None,
            stop_after: None,
            shards: 1,
            partitioner: "blocks".to_string(),
            communities: 0,
            inter_edges: 0,
            cross_fraction: 0.0,
            cross_unroutable: false,
            lease_fraction: 0.5,
            payment_scope: "global".to_string(),
            trace_out: None,
            trace_chrome: None,
            metrics_out: None,
            profile: false,
            fail_seed: None,
            flap_rate: 0.0,
            resize_rate: 0.0,
            outage_rate: 0.0,
            outage_radius: 1,
            drains: Vec::new(),
            health_out: None,
            regret_every: 0,
            slo_us: 0,
        }
    }
}

/// The replay target: a single engine or a sharded one. Identical
/// deterministic outputs are the whole point of the sharded engine, so
/// the replay loop drives both through one surface.
enum Sim {
    Single(Box<Engine>),
    Sharded(Box<ShardedEngine>),
}

impl Sim {
    fn submit_batch(&mut self, batch: &[Arrival]) -> EpochReport {
        match self {
            Sim::Single(e) => e.submit_batch(batch),
            Sim::Sharded(e) => e.submit_batch(batch),
        }
    }

    fn apply_topology(
        &mut self,
        events: &[TopologyEvent],
    ) -> Result<TopologyReport, TopologyError> {
        match self {
            Sim::Single(e) => e.apply_topology(events),
            Sim::Sharded(e) => e.apply_topology(events),
        }
    }

    fn drain_readmissions(&mut self) -> Vec<Arrival> {
        match self {
            Sim::Single(e) => e.drain_readmissions(),
            Sim::Sharded(e) => e.drain_readmissions(),
        }
    }

    fn topology(&self) -> &Topology {
        match self {
            Sim::Single(e) => e.topology(),
            Sim::Sharded(e) => e.topology(),
        }
    }

    fn metrics(&self) -> &ufp_engine::EngineMetrics {
        match self {
            Sim::Single(e) => e.metrics(),
            Sim::Sharded(e) => e.metrics(),
        }
    }

    fn total_utilization(&self) -> f64 {
        match self {
            Sim::Single(e) => e.residual().total_utilization(),
            Sim::Sharded(e) => e.residual().total_utilization(),
        }
    }

    fn utilization_histogram(&self, buckets: usize) -> Vec<usize> {
        match self {
            Sim::Single(e) => e.utilization_histogram(buckets),
            Sim::Sharded(e) => e.utilization_histogram(buckets),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Sim::Single(e) => e.epoch(),
            Sim::Sharded(e) => e.epoch(),
        }
    }

    fn events_dropped(&self) -> u64 {
        match self {
            Sim::Single(e) => e.events_dropped(),
            Sim::Sharded(e) => e.events_dropped(),
        }
    }

    /// Deployment-wide lease accounting: `(granted, used)` summed over
    /// the shards' ledgers; `None` for a single engine (no leases).
    fn lease_totals(&self) -> Option<(f64, f64)> {
        match self {
            Sim::Single(_) => None,
            Sim::Sharded(e) => {
                let ledger = e.ledger();
                let (mut granted, mut used) = (0.0, 0.0);
                for s in 0..e.shards() {
                    granted += ledger.granted(s);
                    used += ledger.used(s);
                }
                Some((granted, used))
            }
        }
    }

    fn feasibility(&self, check_cumulative: bool) -> (bool, Option<bool>) {
        // On a mutated topology the base-capacity instance no longer
        // describes the network: audit the active admissions against the
        // *effective* capacities instead, and skip the cumulative check
        // (evictions release capacity, like churn).
        if !self.topology().is_pristine() {
            let active_ok = match self {
                Sim::Single(e) => e.verify_active_feasibility().is_ok(),
                Sim::Sharded(e) => e.verify_active_feasibility().is_ok(),
            };
            return (active_ok, None);
        }
        let (instance, active, cumulative) = match self {
            Sim::Single(e) => (e.instance(), e.active_solution(), e.cumulative_solution()),
            Sim::Sharded(e) => (e.instance(), e.active_solution(), e.cumulative_solution()),
        };
        let active_ok = active.check_feasible(&instance, false).is_ok();
        let cumulative_ok =
            check_cumulative.then(|| cumulative.check_feasible(&instance, false).is_ok());
        (active_ok, cumulative_ok)
    }

    fn shard_stats(&self) -> Option<Vec<ShardStats>> {
        match self {
            Sim::Single(_) => None,
            Sim::Sharded(e) => Some(e.shard_stats()),
        }
    }
}

/// Version tag of the driver blob carried in the snapshot's driver
/// section (bumped independently of the engine codec version).
/// v2: community/cross-traffic trace flags joined the fingerprint.
/// v3: the unroutable-cross sampling mode joined (it changes the trace).
/// v4: dynamic-topology runs (engine codec v2). The failure-trace flags
/// are deliberately *not* part of the blob: the snapshot's own topology
/// event log is the restore-time authority, checked against the
/// regenerated trace by [`Engine::restore_with_topology`]'s
/// ancestor/fingerprint test (divergence is the typed `GraphMismatch`;
/// a shorter stored log is migrated forward explicitly).
const DRIVER_VERSION: u8 = 4;

/// Digest of the full arrival trace: proof that a restore run's flags
/// regenerate byte-for-byte the stream the snapshot was taken from. The
/// trace *is* the RNG stream here (everything random in the simulation
/// is sampled into it up front), so digest + epoch watermark pin the
/// exact stream position a restored run resumes from.
fn trace_digest(trace: &[Vec<Arrival>]) -> u64 {
    let mut h = Fnv64::default();
    for batch in trace {
        h.write(&(batch.len() as u64).to_le_bytes());
        for a in batch {
            h.write(&a.request.src.0.to_le_bytes());
            h.write(&a.request.dst.0.to_le_bytes());
            h.write(&a.request.demand.to_bits().to_le_bytes());
            h.write(&a.request.value.to_bits().to_le_bytes());
            h.write(&a.ttl.map_or(u64::MAX, u64::from).to_le_bytes());
        }
    }
    h.finish()
}

/// Render one JSON object per completed epoch profile: wall-clock µs,
/// the epoch-stage coverage ratio (open+plan+commit over wall), and
/// every phase that saw activity in the epoch.
fn profile_rows(snap: &ufp_obs::ObsSnapshot) -> Vec<String> {
    snap.profiles
        .iter()
        .map(|p| {
            let phases: Vec<String> = ufp_obs::Phase::ALL
                .iter()
                .filter(|ph| p.phase_hits[ph.index()] > 0)
                .map(|ph| {
                    format!(
                        "\"{}\": {{\"us\": {}, \"hits\": {}}}",
                        ph.name(),
                        p.phase_ns[ph.index()] / 1_000,
                        p.phase_hits[ph.index()]
                    )
                })
                .collect();
            format!(
                "{{\"epoch\": {}, \"wall_us\": {}, \"coverage\": {:.3}, \"phases\": {{{}}}}}",
                p.epoch,
                p.wall_ns / 1_000,
                p.coverage(),
                phases.join(", ")
            )
        })
        .collect()
}

/// Serialize the simulation's own recovery state: the trace fingerprint
/// plus the per-stop-reason counters accumulated so far (everything the
/// engine snapshot cannot know about the driver).
fn encode_driver(options: &Options, digest: u64, stop_counts: &[usize; 4]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(DRIVER_VERSION);
    w.put_u64(options.nodes as u64);
    w.put_u64(options.edges as u64);
    w.put_u64(options.epochs as u64);
    w.put_f64(options.mean);
    w.put_u64(options.hotspots as u64);
    w.put_f64(options.epsilon);
    w.put_u64(options.seed);
    w.put_str(&options.process);
    match options.churn {
        None => w.put_bool(false),
        Some((lo, hi)) => {
            w.put_bool(true);
            w.put_u32(lo);
            w.put_u32(hi);
        }
    }
    w.put_u64(options.communities as u64);
    w.put_u64(options.inter_edges as u64);
    w.put_f64(options.cross_fraction);
    w.put_bool(options.cross_unroutable);
    w.put_u64(digest);
    for &c in stop_counts {
        w.put_u64(c as u64);
    }
    w.into_bytes()
}

/// Decode and verify a driver blob against the current run's flags and
/// regenerated trace. Returns the snapshotted stop counters.
fn decode_driver(bytes: &[u8], options: &Options, digest: u64) -> Result<[usize; 4], String> {
    let fail = |what: &str| format!("snapshot was taken from a different simulation ({what})");
    let mut r = Reader::new(bytes);
    let err = |e: CodecError| e.to_string();
    if r.get_u8("driver version").map_err(err)? != DRIVER_VERSION {
        return Err(fail("driver blob version"));
    }
    if r.get_u64("driver nodes").map_err(err)? != options.nodes as u64 {
        return Err(fail("--nodes"));
    }
    if r.get_u64("driver edges").map_err(err)? != options.edges as u64 {
        return Err(fail("--edges"));
    }
    if r.get_u64("driver epochs").map_err(err)? != options.epochs as u64 {
        return Err(fail("--epochs"));
    }
    if r.get_f64("driver mean").map_err(err)?.to_bits() != options.mean.to_bits() {
        return Err(fail("--mean"));
    }
    if r.get_u64("driver hotspots").map_err(err)? != options.hotspots as u64 {
        return Err(fail("--hotspots"));
    }
    if r.get_f64("driver eps").map_err(err)?.to_bits() != options.epsilon.to_bits() {
        return Err(fail("--eps"));
    }
    if r.get_u64("driver seed").map_err(err)? != options.seed {
        return Err(fail("--seed"));
    }
    if r.get_str("driver process").map_err(err)? != options.process {
        return Err(fail("--process"));
    }
    let churn = if r.get_bool("driver churn flag").map_err(err)? {
        Some((
            r.get_u32("driver churn lo").map_err(err)?,
            r.get_u32("driver churn hi").map_err(err)?,
        ))
    } else {
        None
    };
    if churn != options.churn {
        return Err(fail("--churn"));
    }
    if r.get_u64("driver communities").map_err(err)? != options.communities as u64 {
        return Err(fail("--communities"));
    }
    if r.get_u64("driver inter edges").map_err(err)? != options.inter_edges as u64 {
        return Err(fail("--inter-edges"));
    }
    if r.get_f64("driver cross fraction").map_err(err)?.to_bits()
        != options.cross_fraction.to_bits()
    {
        return Err(fail("--cross-fraction"));
    }
    if r.get_bool("driver cross unroutable").map_err(err)? != options.cross_unroutable {
        return Err(fail("--cross-unroutable"));
    }
    if r.get_u64("driver trace digest").map_err(err)? != digest {
        return Err(fail("arrival-trace digest"));
    }
    let mut stop_counts = [0usize; 4];
    for c in &mut stop_counts {
        *c = r.get_u64("driver stop counts").map_err(err)? as usize;
    }
    r.expect_exhausted().map_err(err)?;
    Ok(stop_counts)
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--nodes" => options.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--edges" => options.edges = value("--edges")?.parse().map_err(|e| format!("{e}"))?,
            "--epochs" => {
                options.epochs = value("--epochs")?.parse().map_err(|e| format!("{e}"))?
            }
            "--mean" => options.mean = value("--mean")?.parse().map_err(|e| format!("{e}"))?,
            "--hotspots" => {
                options.hotspots = value("--hotspots")?.parse().map_err(|e| format!("{e}"))?
            }
            "--eps" => options.epsilon = value("--eps")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => options.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--process" => options.process = value("--process")?,
            "--payments" => options.payments = value("--payments")?,
            "--selection" => options.selection = value("--selection")?,
            "--json" => options.json = true,
            "--threads" => {
                options.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--churn" => {
                let spec = value("--churn")?;
                let (lo, hi) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("--churn wants lo,hi, got {spec}"))?;
                options.churn = Some((
                    lo.parse().map_err(|e| format!("{e}"))?,
                    hi.parse().map_err(|e| format!("{e}"))?,
                ));
            }
            "--snapshot-every" => {
                let k: usize = value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if k == 0 {
                    return Err("--snapshot-every must be at least 1".to_string());
                }
                options.snapshot_every = Some(k);
            }
            "--snapshot-dir" => options.snapshot_dir = Some(value("--snapshot-dir")?),
            "--restore-from" => options.restore_from = Some(value("--restore-from")?),
            "--stop-after" => {
                let j: usize = value("--stop-after")?.parse().map_err(|e| format!("{e}"))?;
                if j == 0 {
                    return Err("--stop-after must be at least 1".to_string());
                }
                options.stop_after = Some(j);
            }
            "--shards" => {
                options.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?;
                if options.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--partitioner" => options.partitioner = value("--partitioner")?,
            "--communities" => {
                options.communities = value("--communities")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--inter-edges" => {
                options.inter_edges = value("--inter-edges")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--cross-fraction" => {
                options.cross_fraction = value("--cross-fraction")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if !(0.0..=1.0).contains(&options.cross_fraction) {
                    return Err("--cross-fraction must lie in [0, 1]".to_string());
                }
            }
            "--cross-unroutable" => options.cross_unroutable = true,
            "--payment-scope" => {
                options.payment_scope = value("--payment-scope")?;
                if !matches!(options.payment_scope.as_str(), "global" | "shard-local") {
                    return Err(format!(
                        "--payment-scope must be global or shard-local, got {}",
                        options.payment_scope
                    ));
                }
            }
            "--lease-fraction" => {
                options.lease_fraction = value("--lease-fraction")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if !(0.0..=1.0).contains(&options.lease_fraction) {
                    return Err("--lease-fraction must lie in [0, 1]".to_string());
                }
            }
            "--fail-trace" => {
                options.fail_seed =
                    Some(value("--fail-trace")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--flap-rate" => {
                options.flap_rate = value("--flap-rate")?.parse().map_err(|e| format!("{e}"))?;
                if !(options.flap_rate >= 0.0 && options.flap_rate.is_finite()) {
                    return Err("--flap-rate must be finite and non-negative".to_string());
                }
            }
            "--resize-rate" => {
                options.resize_rate = value("--resize-rate")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if !(options.resize_rate >= 0.0 && options.resize_rate.is_finite()) {
                    return Err("--resize-rate must be finite and non-negative".to_string());
                }
            }
            "--outage-rate" => {
                options.outage_rate = value("--outage-rate")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if !(0.0..=1.0).contains(&options.outage_rate) {
                    return Err("--outage-rate must lie in [0, 1]".to_string());
                }
            }
            "--drain" => {
                let spec = value("--drain")?;
                let parts: Vec<&str> = spec.split(',').collect();
                let [node, start, duration] = parts[..] else {
                    return Err(format!("--drain wants node,start,duration, got {spec}"));
                };
                let window = DrainWindow {
                    node: NodeId(node.parse().map_err(|e| format!("{e}"))?),
                    start: start.parse().map_err(|e| format!("{e}"))?,
                    duration: duration.parse().map_err(|e| format!("{e}"))?,
                };
                if window.duration == 0 {
                    return Err("--drain duration must be at least 1".to_string());
                }
                options.drains.push(window);
            }
            "--outage-radius" => {
                options.outage_radius = value("--outage-radius")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if options.outage_radius == 0 {
                    return Err("--outage-radius must be at least 1".to_string());
                }
            }
            "--trace-out" => options.trace_out = Some(value("--trace-out")?),
            "--trace-chrome" => options.trace_chrome = Some(value("--trace-chrome")?),
            "--metrics-out" => options.metrics_out = Some(value("--metrics-out")?),
            "--profile" => options.profile = true,
            "--health-out" => options.health_out = Some(value("--health-out")?),
            "--regret-every" => {
                options.regret_every = value("--regret-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--slo-us" => {
                options.slo_us = value("--slo-us")?.parse().map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if options.fail_seed.is_none()
        && (options.flap_rate > 0.0
            || options.resize_rate > 0.0
            || options.outage_rate > 0.0
            || options.outage_radius != 1
            || !options.drains.is_empty())
    {
        return Err(
            "--flap-rate / --resize-rate / --outage-rate / --outage-radius / --drain \
             require --fail-trace"
                .to_string(),
        );
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("engine_sim: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Network: random digraph in the large-capacity regime for the
    // chosen ε — one connected G(n, m) by default, or a
    // community-structured digraph (`--communities K`, optionally with
    // `--inter-edges` cross links) for sharded scenarios.
    let b = required_b(options.edges, options.epsilon).ceil();
    let mut graph_rng = StdRng::seed_from_u64(options.seed);
    let graph: Graph = if options.communities > 0 {
        let k = options.communities;
        if options.nodes < 2 * k {
            eprintln!(
                "engine_sim: --communities {k} needs at least {} nodes",
                2 * k
            );
            return ExitCode::FAILURE;
        }
        generators::community_digraph(
            k,
            options.nodes / k,
            options.edges / k,
            options.inter_edges,
            (b, 2.0 * b),
            (b, 2.0 * b),
            &mut graph_rng,
        )
    } else {
        if options.cross_fraction > 0.0 || options.inter_edges > 0 || options.cross_unroutable {
            eprintln!(
                "engine_sim: --cross-fraction / --inter-edges / --cross-unroutable \
                 require --communities"
            );
            return ExitCode::FAILURE;
        }
        generators::gnm_digraph(options.nodes, options.edges, (b, 2.0 * b), &mut graph_rng)
    };

    let process = match options.process.as_str() {
        "poisson" => ArrivalProcess::Poisson { mean: options.mean },
        "diurnal" => ArrivalProcess::Diurnal {
            mean: options.mean,
            amplitude: 0.6,
            period: 24,
        },
        "flash" => ArrivalProcess::FlashCrowd {
            base: options.mean,
            spike: 4.0 * options.mean,
            at: (options.epochs / 2) as u32,
            width: 5,
        },
        other => {
            eprintln!("engine_sim: unknown process {other} (poisson|diurnal|flash)");
            return ExitCode::FAILURE;
        }
    };
    let trace = if options.communities > 0 {
        // Community-local traffic with a tunable cross fraction; the
        // trace depends on the communities, not on --shards, so sharded
        // and single replays see the byte-identical stream.
        let labels = block_shard_map(graph.num_nodes(), options.communities);
        sharded_arrival_trace(
            &graph,
            &labels,
            &ShardedTraceConfig {
                epochs: options.epochs,
                process,
                cross_fraction: options.cross_fraction,
                hotspot_pairs: Some((options.hotspots / options.communities).max(1)),
                demand_range: (0.2, 1.0),
                ttl_range: options.churn,
                allow_unroutable_cross: options.cross_unroutable,
                seed: options.seed,
                ..Default::default()
            },
        )
    } else {
        arrival_trace(
            &graph,
            &ArrivalTraceConfig {
                epochs: options.epochs,
                process,
                hotspot_pairs: Some(options.hotspots),
                demand_range: (0.2, 1.0),
                ttl_range: options.churn,
                seed: options.seed,
                ..Default::default()
            },
        )
    };
    let total_requests: usize = trace.iter().map(Vec::len).sum();

    // Infrastructure-side trace: one TopologyEvent batch per epoch,
    // deterministic in its own seed so demand and failures can vary
    // independently. Empty when failure injection is off.
    let fail_trace: Vec<Vec<TopologyEvent>> = match options.fail_seed {
        None => Vec::new(),
        Some(seed) => failure_trace(
            &graph,
            &FailureTraceConfig {
                epochs: options.epochs as u32,
                seed,
                flap_rate: options.flap_rate,
                resize_rate: options.resize_rate,
                outage_rate: options.outage_rate,
                outage_radius: options.outage_radius,
                drains: options.drains.clone(),
                ..FailureTraceConfig::default()
            },
        ),
    };
    let total_topology_events: usize = fail_trace.iter().map(Vec::len).sum();

    // Replay.
    let payment_policy = match options.payments.as_str() {
        "none" => PaymentPolicy::None,
        "critical" => PaymentPolicy::critical_value(),
        "critical-naive" => PaymentPolicy::critical_value_naive(),
        other => {
            eprintln!("engine_sim: unknown payments {other} (none|critical|critical-naive)");
            return ExitCode::FAILURE;
        }
    };
    let selection = match options.selection.as_str() {
        "incremental" => SelectionStrategy::Incremental,
        "fanout" => SelectionStrategy::FanOut,
        other => {
            eprintln!("engine_sim: unknown selection {other} (incremental|fanout)");
            return ExitCode::FAILURE;
        }
    };
    // Observability: any of the export/profile/health flags turns the
    // recorder on. Strictly out-of-band — the deterministic stdout
    // document is byte-identical with it on or off (enforced in CI).
    // The health flags also stay out of the driver fingerprint: a
    // snapshot taken without them restores under them, and vice versa.
    let health_requested =
        options.health_out.is_some() || options.regret_every > 0 || options.slo_us > 0;
    let obs = if options.trace_out.is_some()
        || options.trace_chrome.is_some()
        || options.metrics_out.is_some()
        || options.profile
        || health_requested
    {
        ufp_obs::Recorder::enabled()
    } else {
        ufp_obs::Recorder::off()
    };
    ufp_par::set_recorder(obs.clone());
    let health = ufp_engine::HealthConfig {
        regret_every: options.regret_every,
        slo_us: options.slo_us,
        // Starvation / storm watermarks ride along whenever the health
        // exporter is on (pure telemetry; thresholds are conservative).
        starvation_epochs: if options.health_out.is_some() { 2 } else { 0 },
        eviction_storm_threshold: if options.health_out.is_some() {
            1.0
        } else {
            0.0
        },
        ..ufp_engine::HealthConfig::default()
    };
    let engine_config = EngineConfig {
        events: EventLevel::Epoch,
        payments: payment_policy,
        selection,
        obs: obs.clone(),
        health,
        ..EngineConfig::with_epsilon(options.epsilon).parallel(Pool::new(options.threads))
    };
    let digest = trace_digest(&trace);
    let graph = Arc::new(graph);

    if options.shards > 1
        && (options.snapshot_every.is_some()
            || options.snapshot_dir.is_some()
            || options.restore_from.is_some())
    {
        eprintln!(
            "engine_sim: snapshot flags are not supported with --shards > 1 \
             (use ShardedEngine::snapshot_to programmatically)"
        );
        return ExitCode::FAILURE;
    }

    // Sharded replay: partition the network and drive a ShardedEngine.
    let sharded = if options.shards > 1 {
        let plan = match options.partitioner.as_str() {
            "blocks" => NodeBlocks.partition(&graph, options.shards),
            "edge-cut" => EdgeCut.partition(&graph, options.shards),
            "hotspot" => {
                // Seed territories from the trace's observed endpoint
                // pairs, in order of first appearance.
                let mut seen = std::collections::HashSet::new();
                let mut pairs = Vec::new();
                for a in trace.iter().flatten() {
                    if seen.insert((a.request.src, a.request.dst)) {
                        pairs.push((a.request.src, a.request.dst));
                    }
                }
                if pairs.is_empty() {
                    eprintln!("engine_sim: empty trace cannot seed the hotspot partitioner");
                    return ExitCode::FAILURE;
                }
                HotspotPairs { pairs }.partition(&graph, options.shards)
            }
            other => {
                eprintln!("engine_sim: unknown partitioner {other} (blocks|edge-cut|hotspot)");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "engine_sim: {} shards via {} partitioner, {} boundary edges",
            options.shards,
            options.partitioner,
            plan.boundary_edges().len()
        );
        let payment_scope = match options.payment_scope.as_str() {
            "global" => PaymentScope::GlobalTrace,
            "shard-local" => PaymentScope::ShardLocal,
            other => unreachable!("parse_options validated --payment-scope, got {other}"),
        };
        Some(ShardedEngine::new(
            Arc::clone(&graph),
            plan,
            ShardConfig {
                engine: engine_config.clone(),
                lease_fraction: options.lease_fraction,
                payment_scope,
            },
        ))
    } else {
        None
    };

    // Fresh engine at epoch 0, or one recovered from the newest loadable
    // snapshot (replay then covers only the epochs after its watermark).
    let (mut engine, mut stop_counts) = match &options.restore_from {
        None => {
            let sim = match sharded {
                Some(s) => Sim::Sharded(Box::new(s)),
                None => Sim::Single(Box::new(Engine::from_shared(
                    Arc::clone(&graph),
                    engine_config.clone(),
                ))),
            };
            (sim, [0usize; 4])
        }
        Some(dir) => {
            let store = match SnapshotStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("engine_sim: cannot open snapshot store {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match store.recover(Arc::clone(&graph), engine_config.clone()) {
                Err(e) => {
                    eprintln!("engine_sim: restore failed: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(None) => {
                    eprintln!("engine_sim: no snapshot in {dir}, starting from epoch 0");
                    (
                        Sim::Single(Box::new(Engine::from_shared(
                            Arc::clone(&graph),
                            engine_config.clone(),
                        ))),
                        [0usize; 4],
                    )
                }
                Ok(Some(recovered)) => {
                    for (path, reason) in &recovered.skipped {
                        eprintln!(
                            "engine_sim: skipped unreadable snapshot {}: {reason}",
                            path.display()
                        );
                    }
                    let stop_counts = match decode_driver(&recovered.driver, &options, digest) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("engine_sim: restore refused: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    // Topology authority check: the snapshot carries its
                    // own overlay event log, which must be an ancestor of
                    // the topology this run's failure trace implies at the
                    // snapshot's watermark. A shorter stored log is
                    // migrated forward (evictions priced and refunded); a
                    // divergent one has no reconciling delta and is
                    // refused with the typed `GraphMismatch`.
                    let watermark = (recovered.epoch as usize).min(fail_trace.len());
                    let target_events: Vec<TopologyEvent> =
                        fail_trace[..watermark].iter().flatten().copied().collect();
                    let target = match Topology::replay(&graph, &target_events) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("engine_sim: failure trace does not apply to the graph: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let bytes = match std::fs::read(&recovered.path) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!(
                                "engine_sim: cannot reread snapshot {}: {e}",
                                recovered.path.display()
                            );
                            return ExitCode::FAILURE;
                        }
                    };
                    let (engine, migration) = match Engine::restore_with_topology(
                        &bytes,
                        Arc::clone(&graph),
                        engine_config.clone(),
                        &target,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("engine_sim: restore refused: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    if let Some(m) = migration {
                        eprintln!(
                            "engine_sim: topology migration v{} -> v{}: {} evicted, \
                             {:.6} refunded, {} re-admission(s) queued",
                            m.from_version, m.to_version, m.evicted, m.refunded, m.readmissions
                        );
                    }
                    eprintln!(
                        "engine_sim: restored epoch {} from {}",
                        recovered.epoch,
                        recovered.path.display()
                    );
                    (Sim::Single(Box::new(engine)), stop_counts)
                }
            }
        }
    };

    let store = match &options.snapshot_dir {
        Some(dir) => match SnapshotStore::open(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("engine_sim: cannot open snapshot store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if options.snapshot_every.is_some() && store.is_none() {
        eprintln!("engine_sim: --snapshot-every requires --snapshot-dir");
        return ExitCode::FAILURE;
    }

    let start_epoch = engine.epoch() as usize;
    let mut sampled_rows: Vec<Vec<String>> = Vec::new();
    let sample_every = (options.epochs / 10).max(1);
    // Per-epoch repair-phase wall-clock (µs): topology.apply,
    // repair.evict, repair.readmit. The repair pass runs *before* the
    // epoch bracket opens, so the profile table cannot see it through
    // the bracket's own deltas — the driver diffs the recorder's
    // lifetime phase totals around the pass instead.
    let mut repair_us: std::collections::HashMap<u64, [u64; 3]> = std::collections::HashMap::new();
    let replay_started = Instant::now();
    for (t, batch) in trace.iter().enumerate().skip(start_epoch) {
        // Infrastructure first: epoch `t`'s topology events run the
        // repair pass (evictions priced and refunded, re-admission
        // candidates queued), then survivors of past repairs rejoin the
        // arrival stream ahead of the scheduled batch.
        let merged: Vec<Arrival>;
        let batch: &[Arrival] = if fail_trace.is_empty() {
            batch
        } else {
            if let Some(events) = fail_trace.get(t) {
                if !events.is_empty() {
                    let before = obs.phase_totals();
                    if let Err(e) = engine.apply_topology(events) {
                        eprintln!("engine_sim: topology event refused at epoch {t}: {e}");
                        return ExitCode::FAILURE;
                    }
                    if let (true, Some((b, _)), Some((a, _))) =
                        (options.profile, before, obs.phase_totals())
                    {
                        let delta = |ph: ufp_obs::Phase| {
                            a[ph.index()].saturating_sub(b[ph.index()]) / 1_000
                        };
                        repair_us.insert(
                            t as u64 + 1,
                            [
                                delta(ufp_obs::Phase::TopologyApply),
                                delta(ufp_obs::Phase::RepairEvict),
                                delta(ufp_obs::Phase::RepairReadmit),
                            ],
                        );
                    }
                }
            }
            let readmitted = engine.drain_readmissions();
            if readmitted.is_empty() {
                batch
            } else {
                merged = readmitted
                    .into_iter()
                    .chain(batch.iter().cloned())
                    .collect();
                &merged
            }
        };
        let report = engine.submit_batch(batch);
        stop_counts[match report.stop {
            StopReason::Exhausted => 0,
            StopReason::Guard => 1,
            StopReason::NoPath => 2,
            StopReason::IterationCap => 3,
        }] += 1;
        if (t + 1) % sample_every == 0 || t + 1 == options.epochs {
            let m = engine.metrics();
            sampled_rows.push(vec![
                report.epoch.to_string(),
                report.arrivals.to_string(),
                report.accepted.to_string(),
                report.released.to_string(),
                f2(100.0 * m.acceptance_rate()),
                f2(100.0 * report.total_utilization),
                f2(report.min_residual),
            ]);
        }
        if let (Some(every), Some(store), Sim::Single(single)) =
            (options.snapshot_every, &store, &engine)
        {
            if (t + 1) % every == 0 {
                let driver = encode_driver(&options, digest, &stop_counts);
                match store.save_with(single, &driver) {
                    Ok(path) => eprintln!(
                        "engine_sim: snapshot at epoch {} -> {}",
                        single.epoch(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("engine_sim: snapshot failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        if options.stop_after == Some(t + 1) {
            // Simulated crash: no summary, no final feasibility audit —
            // recovery (--restore-from) must rebuild everything from the
            // snapshots already on disk.
            eprintln!(
                "engine_sim: stopping after epoch {} (simulated crash)",
                t + 1
            );
            return ExitCode::SUCCESS;
        }
    }

    let replay_elapsed = replay_started.elapsed();

    // Feasibility verdict: active always; cumulative too when no churn.
    let (active_ok, cumulative_ok) = engine.feasibility(options.churn.is_none());
    let feasible = active_ok && cumulative_ok.is_none_or(|c| c);

    // Observability exports — side files, never part of the
    // deterministic stdout document.
    let obs_snapshot = obs.snapshot();
    if let Some(snap) = &obs_snapshot {
        let write = |path: &Option<String>, what: &str, body: String| -> Result<(), String> {
            match path {
                None => Ok(()),
                Some(p) => {
                    std::fs::write(p, body).map_err(|e| format!("cannot write {what} {p}: {e}"))
                }
            }
        };
        let wrote = write(
            &options.trace_out,
            "trace",
            ufp_obs::export::spans_jsonl(snap),
        )
        .and_then(|()| {
            write(
                &options.trace_chrome,
                "chrome trace",
                ufp_obs::export::chrome_trace(snap),
            )
        })
        .and_then(|()| {
            write(
                &options.metrics_out,
                "metrics",
                ufp_obs::export::metrics_json(snap),
            )
        })
        .and_then(|()| {
            write(
                &options.health_out,
                "health exposition",
                ufp_obs::export::prometheus_text(snap),
            )
        });
        if let Err(e) = wrote {
            eprintln!("engine_sim: {e}");
            return ExitCode::FAILURE;
        }
    }

    if options.json {
        let metrics = engine.metrics();
        let churn = match options.churn {
            Some((lo, hi)) => format!("[{lo}, {hi}]"),
            None => "null".to_string(),
        };
        println!("{{");
        println!(
            "  \"config\": {{\"nodes\": {}, \"edges\": {}, \"epochs\": {}, \"mean\": {}, \
             \"hotspots\": {}, \"eps\": {}, \"seed\": {}, \"process\": \"{}\", \
             \"churn\": {}, \"payments\": \"{}\", \"selection\": \"{}\", \"threads\": {}, \
             \"shards\": {}, \"partitioner\": \"{}\", \"communities\": {}, \
             \"inter_edges\": {}, \"cross_fraction\": {}, \"cross_unroutable\": {}, \
             \"lease_fraction\": {}, \"payment_scope\": \"{}\", \
             \"selection_strategy\": \"{:?}\", \"fail_seed\": {}, \"flap_rate\": {}, \
             \"resize_rate\": {}, \"outage_rate\": {}, \"drains\": {}}},",
            options.nodes,
            options.edges,
            options.epochs,
            options.mean,
            options.hotspots,
            options.epsilon,
            options.seed,
            options.process,
            churn,
            options.payments,
            options.selection,
            options.threads,
            options.shards,
            options.partitioner,
            options.communities,
            options.inter_edges,
            options.cross_fraction,
            options.cross_unroutable,
            options.lease_fraction,
            options.payment_scope,
            selection,
            options
                .fail_seed
                .map_or("null".to_string(), |s| s.to_string()),
            options.flap_rate,
            options.resize_rate,
            options.outage_rate,
            options.drains.len()
        );
        println!(
            "  \"totals\": {{\"requests\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"released\": {}, \"evicted\": {}, \"refunded\": {:.6}, \
             \"acceptance_rate\": {:.6}, \"value_admitted\": {:.6}, \
             \"revenue\": {:.6}, \"utilization\": {:.6}, \"events_dropped\": {}, \
             \"topology_events\": {}, \"links_down\": {}, \
             \"stops\": {{\"exhausted\": {}, \"guard\": {}, \"nopath\": {}, \"cap\": {}}}}},",
            total_requests,
            metrics.accepted,
            metrics.rejected,
            metrics.released,
            metrics.evicted,
            metrics.refunded,
            metrics.acceptance_rate(),
            metrics.value_admitted,
            metrics.revenue,
            engine.total_utilization(),
            engine.events_dropped(),
            total_topology_events,
            engine.topology().links_down(),
            stop_counts[0],
            stop_counts[1],
            stop_counts[2],
            stop_counts[3]
        );
        // Per-shard deterministic counters (lease accounting; the last
        // row is the reconciler). Wall-clock per-shard epoch time lives
        // in the "timing" object below.
        if let Some(stats) = engine.shard_stats() {
            let rows: Vec<String> = stats
                .iter()
                .map(|s| {
                    format!(
                        "{{\"shard\": {}, \"requests\": {}, \"admissions\": {}, \
                         \"lease_granted\": {:.6}, \"lease_used\": {:.6}, \
                         \"lease_utilization\": {:.6}}}",
                        s.shard,
                        s.requests,
                        s.admissions,
                        s.lease_granted,
                        s.lease_used,
                        s.lease_utilization
                    )
                })
                .collect();
            println!("  \"shards_detail\": [{}],", rows.join(", "));
        }
        // Deployment-wide lease accounting (sharded runs only;
        // deterministic — CI filters it only in sharded-vs-single
        // comparisons, where the single side has no leases at all).
        if let Some((granted, used)) = engine.lease_totals() {
            println!(
                "  \"leases\": {{\"granted\": {:.6}, \"used\": {:.6}, \"utilization\": {:.6}}},",
                granted,
                used,
                if granted > 0.0 { used / granted } else { 0.0 }
            );
        }
        println!("  \"feasible\": {feasible},");
        // Wall-clock block — the one non-deterministic part of the
        // document; strip it before byte-comparing runs.
        let shard_timing = match engine.shard_stats() {
            None => String::new(),
            Some(stats) => format!(
                ", \"shard_epoch_us\": [{}]",
                stats
                    .iter()
                    .map(|s| s.epoch_time_us.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        // Per-epoch phase breakdown (wall-clock; lives inside "timing"
        // because it is measured, not deterministic).
        let profile_json = match (&obs_snapshot, options.profile) {
            (Some(snap), true) => format!(", \"profile\": [{}]", profile_rows(snap).join(", ")),
            _ => String::new(),
        };
        // Auction-health summary (regret ratios are deterministic, but
        // SLO misses and alerts are wall-clock-derived, so the whole
        // block lives inside "timing" with the other measured figures).
        let health_json = match (&obs_snapshot, health_requested) {
            (Some(snap), true) => {
                let ratios: Vec<f64> = snap
                    .profiles
                    .iter()
                    .filter_map(|p| p.regret.map(|s| s.ratio))
                    .collect();
                let worst = ratios.iter().copied().fold(1.0f64, f64::min);
                let mean = if ratios.is_empty() {
                    1.0
                } else {
                    ratios.iter().sum::<f64>() / ratios.len() as f64
                };
                format!(
                    ", \"health\": {{\"regret_samples\": {}, \"regret_ratio_mean\": {:.6}, \
                     \"regret_ratio_worst\": {:.6}, \"alerts\": {}}}",
                    ratios.len(),
                    mean,
                    worst,
                    snap.alerts.len()
                )
            }
            _ => String::new(),
        };
        println!(
            "  \"timing\": {{\"elapsed_s\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \
             \"requests_per_s\": {:.1}{}{}{}}}",
            replay_elapsed.as_secs_f64(),
            metrics.p50_latency_us().unwrap_or(0),
            metrics.p99_latency_us().unwrap_or(0),
            metrics.requests_per_second().unwrap_or(0.0),
            shard_timing,
            profile_json,
            health_json
        );
        println!("}}");
        return if feasible {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Deterministic summary (stdout).
    let metrics = engine.metrics();
    let mut timeline = Table::new(
        "SIM-T",
        format!(
            "engine timeline — {} nodes, {} edges, {} epochs, {} process, seed {}",
            options.nodes, options.edges, options.epochs, options.process, options.seed
        ),
        &[
            "epoch",
            "arrivals",
            "accepted",
            "released",
            "cum acc %",
            "util %",
            "min resid",
        ],
    );
    for row in sampled_rows {
        timeline.row(row);
    }
    print!("{}", timeline.render());

    let mut summary = Table::new("SIM-S", "engine summary", &["metric", "value"]);
    let kv = |t: &mut Table, k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv(
        &mut summary,
        "requests in trace",
        total_requests.to_string(),
    );
    kv(&mut summary, "epochs", metrics.epochs.to_string());
    kv(&mut summary, "accepted", metrics.accepted.to_string());
    kv(&mut summary, "rejected", metrics.rejected.to_string());
    kv(&mut summary, "released", metrics.released.to_string());
    kv(&mut summary, "evicted", metrics.evicted.to_string());
    kv(&mut summary, "refunded", f2(metrics.refunded));
    if options.fail_seed.is_some() {
        kv(
            &mut summary,
            "topology events / links down",
            format!(
                "{}/{}",
                total_topology_events,
                engine.topology().links_down()
            ),
        );
    }
    kv(
        &mut summary,
        "acceptance rate %",
        f2(100.0 * metrics.acceptance_rate()),
    );
    kv(&mut summary, "value admitted", f2(metrics.value_admitted));
    kv(&mut summary, "payments", options.payments.clone());
    kv(&mut summary, "selection", options.selection.clone());
    kv(&mut summary, "revenue", f2(metrics.revenue));
    kv(
        &mut summary,
        "total utilization %",
        f2(100.0 * engine.total_utilization()),
    );
    if let Some(stats) = engine.shard_stats() {
        for s in &stats {
            let label = if s.shard == stats.len() - 1 {
                "reconciler".to_string()
            } else {
                format!("shard {}", s.shard)
            };
            kv(
                &mut summary,
                &format!("{label} req/adm/lease util %"),
                format!(
                    "{}/{}/{}",
                    s.requests,
                    s.admissions,
                    f2(100.0 * s.lease_utilization)
                ),
            );
        }
    }
    let hist = engine.utilization_histogram(10);
    kv(
        &mut summary,
        "edge util histogram",
        hist.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("/"),
    );
    kv(
        &mut summary,
        "events dropped",
        engine.events_dropped().to_string(),
    );
    kv(
        &mut summary,
        "stops exh/guard/nopath/cap",
        format!(
            "{}/{}/{}/{}",
            stop_counts[0], stop_counts[1], stop_counts[2], stop_counts[3]
        ),
    );

    let active_audit = if engine.topology().is_pristine() {
        "check_feasible"
    } else {
        "effective-capacity audit"
    };
    if active_ok {
        summary.note(format!("active solution: {active_audit} PASS"));
    } else {
        summary.note(format!("active solution: {active_audit} FAIL"));
    }
    match cumulative_ok {
        Some(true) => summary.note("cumulative solution: check_feasible PASS"),
        Some(false) => summary.note("cumulative solution: check_feasible FAIL"),
        None if options.fail_seed.is_some() => {
            summary.note("cumulative feasibility skipped (evictions/churn release capacity)")
        }
        None => summary.note("cumulative feasibility skipped (churn releases capacity)"),
    }
    print!("{}", summary.render());

    // Wall-clock figures (stderr; excluded from determinism).
    eprintln!(
        "latency p50 {} µs, p99 {} µs; throughput {:.0} requests/s",
        metrics.p50_latency_us().unwrap_or(0),
        metrics.p99_latency_us().unwrap_or(0),
        metrics.requests_per_second().unwrap_or(0.0),
    );
    if options.profile {
        if let Some(snap) = &obs_snapshot {
            for p in &snap.profiles {
                let mut line = format!(
                    "profile epoch {}: wall {} µs, open {} µs, plan {} µs, commit {} µs",
                    p.epoch,
                    p.wall_ns / 1_000,
                    p.phase_ns[ufp_obs::Phase::EpochOpen.index()] / 1_000,
                    p.phase_ns[ufp_obs::Phase::EpochPlan.index()] / 1_000,
                    p.phase_ns[ufp_obs::Phase::EpochCommit.index()] / 1_000,
                );
                if let Some([apply, evict, readmit]) = repair_us.get(&p.epoch) {
                    line.push_str(&format!(
                        ", topology.apply {apply} µs, repair.evict {evict} µs, \
                         repair.readmit {readmit} µs"
                    ));
                }
                line.push_str(&format!(", coverage {:.1}%", 100.0 * p.coverage()));
                if let Some(s) = p.regret {
                    line.push_str(&format!(
                        ", regret {:.3} (online {:.2} / bound {:.2}, gap {:.2}, \
                         {} commodities, {} iterations)",
                        s.ratio,
                        s.online_value,
                        s.fractional_bound,
                        s.duality_gap,
                        s.commodities,
                        s.iterations
                    ));
                }
                eprintln!("{line}");
            }
            for a in &snap.alerts {
                eprintln!("health alert at epoch {}: {:?}", a.epoch(), a);
            }
        }
    }

    if feasible {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
