//! Experiment runner: prints the tables of DESIGN.md §3.
//!
//! Usage:
//! ```text
//! experiments all            # run the full suite
//! experiments e2 e4          # run selected experiments
//! experiments --csv e2       # additionally emit CSV
//! experiments --list         # list experiment ids
//! ```

use ufp_bench::{run_experiment, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<String> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };

    for id in &selected {
        match run_experiment(id) {
            Some(table) => {
                println!("{}", table.render());
                if csv {
                    println!("--- csv ---\n{}", table.to_csv());
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}
