//! Lower-bound experiments: Theorem 3.11 / Figure 2 (E2), Theorem 3.12 /
//! Figure 3 (E3), Theorem 4.5 / Figure 4 (E4), and the reasonable-score
//! ablation (E11).

use ufp_auction::{
    iterative_bundle_minimizer, BundleEngineConfig, BundleSizeScore, LinearCongestionScore,
    MucaPrimalDualScore,
};
use ufp_core::{
    iterative_path_minimizer, EngineConfig, HopScore, LengthBiasedScore, PathScore,
    PrimalDualScore, ProductScore, TieBreak,
};
use ufp_par::Pool;
use ufp_workloads::{
    figure2, figure2_optimum, figure2_predicted_ratio, figure2_subdivided, figure3,
    figure3_algorithm_bound, figure3_hub, figure3_optimum, figure4, figure4_algorithm_bound,
    figure4_optimum, figure4_predicted_ratio,
};

use crate::table::{f, Table};

const E: f64 = std::f64::consts::E;

/// E2 — Theorem 3.11 / Figure 2: the adversarial schedule drives any
/// reasonable iterative path minimizer to ratio → e/(e−1).
pub fn e2_figure2_lower_bound() -> Table {
    let limit = E / (E - 1.0);
    let mut t = Table::new(
        "E2",
        "Theorem 3.11 / Figure 2: reasonable path minimizers cannot beat e/(e−1) ≈ 1.5820",
        &[
            "variant",
            "B",
            "ell",
            "ALG",
            "OPT",
            "ratio",
            "predicted",
            "e/(e-1)",
        ],
    );

    // Main series: the O(ℓ²)-per-iteration simulator (pinned to the
    // generic engine by a workloads test), ℓ ≫ B so the +O(B²) slack is
    // small.
    for &(b, ell) in &[(2usize, 64usize), (4, 128), (8, 256), (16, 512), (32, 512)] {
        let alg = ufp_workloads::figure2::simulate_figure2_adversary(ell, b, 0.5);
        let opt = figure2_optimum(ell, b);
        t.row(vec![
            "plain".into(),
            b.to_string(),
            ell.to_string(),
            f(alg),
            f(opt),
            f(opt / alg),
            f(figure2_predicted_ratio(b)),
            f(limit),
        ]);
    }

    // Tie-break-free series: the subdivided variant forces the schedule
    // under the neutral lowest-request tie-break, on the generic engine.
    for &(b, ell) in &[(2usize, 8usize), (3, 8), (4, 8)] {
        let inst = figure2_subdivided(ell, b);
        let cfg = EngineConfig {
            tie: TieBreak::LowestRequest,
            pool: Pool::auto(),
            ..Default::default()
        };
        let run = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        assert!(run.solution.check_feasible(&inst, false).is_ok());
        let alg = run.solution.value(&inst);
        let opt = figure2_optimum(ell, b);
        t.row(vec![
            "subdivided".into(),
            b.to_string(),
            ell.to_string(),
            f(alg),
            f(opt),
            f(opt / alg),
            f(figure2_predicted_ratio(b)),
            f(limit),
        ]);
    }

    t.note("predicted = 1/(1−(B/(B+1))^B) → e/(e−1); the plain series (ℓ = 16–32·B)");
    t.note("tracks it from just below (+O(B²) slack) and converges as B grows. The");
    t.note("subdivided series uses small ℓ (the graph is Θ(ℓ⁴)), where the finite-ℓ");
    t.note("schedule is even worse than the asymptotic prediction — still ≥ the bound.");
    t.note("The subdivided variant needs no adversarial tie-break: shorter paths are");
    t.note("strictly preferred, forcing the same 'minimal i, maximal j' schedule.");
    t
}

/// E3 — Theorem 3.12 / Figure 3: 4/3 lower bound, any B, undirected.
pub fn e3_figure3_lower_bound() -> Table {
    let mut t = Table::new(
        "E3",
        "Theorem 3.12 / Figure 3: 4/3 lower bound for any B (undirected, hub-adversarial ties)",
        &["B", "ALG", "3B (proof)", "OPT", "ratio", "4/3"],
    );
    for &b in &[2usize, 8, 32, 128] {
        let inst = figure3(b);
        let cfg = EngineConfig {
            tie: TieBreak::ViaHub(figure3_hub()),
            pool: Pool::auto(),
            ..Default::default()
        };
        let run = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        assert!(run.solution.check_feasible(&inst, false).is_ok());
        let alg = run.solution.value(&inst);
        let opt = figure3_optimum(b);
        t.row(vec![
            b.to_string(),
            f(alg),
            f(figure3_algorithm_bound(b)),
            f(opt),
            f(opt / alg),
            f(4.0 / 3.0),
        ]);
    }
    t.note("ALG must equal the proof's 3B ceiling exactly: the hub tie-break burns the");
    t.note("{v1–v7, v3–v7} cut during the first two request blocks, capping the rest at B.");
    t
}

/// E4 — Theorem 4.5 / Figure 4: 4/3 lower bound for reasonable bundle
/// minimizers.
pub fn e4_figure4_lower_bound() -> Table {
    let mut t = Table::new(
        "E4",
        "Theorem 4.5 / Figure 4: reasonable bundle minimizers cannot beat 4/3 (ratio = 4p/(3p+1))",
        &[
            "p",
            "B",
            "m",
            "ALG",
            "(3p+1)B/4",
            "OPT",
            "ratio",
            "predicted",
            "4/3",
        ],
    );
    for &p in &[3usize, 7, 15, 31] {
        let b = 4usize;
        let m = p * (p + 1);
        let a = figure4(p, b, m);
        let run =
            iterative_bundle_minimizer(&a, &MucaPrimalDualScore, &BundleEngineConfig::default());
        assert!(run.solution.check_feasible(&a).is_ok());
        let alg = run.solution.value(&a);
        let opt = figure4_optimum(p, b);
        t.row(vec![
            p.to_string(),
            b.to_string(),
            m.to_string(),
            f(alg),
            f(figure4_algorithm_bound(p, b)),
            f(opt),
            f(opt / alg),
            f(figure4_predicted_ratio(p)),
            f(4.0 / 3.0),
        ]);
    }
    t.note("All bundles have |U|/p items and unit value, so the engine is tie-bound;");
    t.note("lowest-id ties (type-1 bids listed first) realize the adversary. ALG must");
    t.note("match (3p+1)B/4 exactly and the ratio 4p/(3p+1) → 4/3.");
    t
}

/// E11 — ablation over the reasonable functions of §3.3 (h, h₁, h₂,
/// hop count) and their auction analogs: every member of the family obeys
/// the lower bounds; none beats them.
pub fn e11_score_ablation() -> Table {
    let mut t = Table::new(
        "E11",
        "Definition 3.9 ablation: every reasonable score obeys the lower bounds",
        &[
            "family", "score", "instance", "ALG", "OPT", "ratio", "floor",
        ],
    );

    // UFP scores on Figure 2 (B=4, ℓ=64, adversarial ties).
    let inst2 = figure2(64, 4);
    let scores: Vec<Box<dyn PathScore>> = vec![
        Box::new(PrimalDualScore),
        Box::new(LengthBiasedScore),
        Box::new(ProductScore),
        Box::new(HopScore),
    ];
    for s in &scores {
        let cfg = EngineConfig {
            tie: TieBreak::HighestSecondNode,
            pool: Pool::auto(),
            ..Default::default()
        };
        let run = iterative_path_minimizer(&inst2, s.as_ref(), &cfg);
        assert!(run.solution.check_feasible(&inst2, false).is_ok());
        let alg = run.solution.value(&inst2);
        let opt = figure2_optimum(64, 4);
        t.row(vec![
            "path".into(),
            s.name().into(),
            "figure2(64,4)".into(),
            f(alg),
            f(opt),
            f(opt / alg),
            "~1.58 (E2)".into(),
        ]);
    }

    // UFP scores on Figure 3 (B=16, hub ties).
    let inst3 = figure3(16);
    for s in &scores {
        let cfg = EngineConfig {
            tie: TieBreak::ViaHub(figure3_hub()),
            pool: Pool::auto(),
            ..Default::default()
        };
        let run = iterative_path_minimizer(&inst3, s.as_ref(), &cfg);
        assert!(run.solution.check_feasible(&inst3, false).is_ok());
        let alg = run.solution.value(&inst3);
        let opt = figure3_optimum(16);
        t.row(vec![
            "path".into(),
            s.name().into(),
            "figure3(16)".into(),
            f(alg),
            f(opt),
            f(opt / alg),
            "4/3".into(),
        ]);
    }

    // Auction scores on Figure 4 (p=7, B=4).
    let a4 = figure4(7, 4, 56);
    let bscores: Vec<Box<dyn ufp_auction::BundleScore>> = vec![
        Box::new(MucaPrimalDualScore),
        Box::new(BundleSizeScore),
        Box::new(LinearCongestionScore),
    ];
    for s in &bscores {
        let run = iterative_bundle_minimizer(&a4, s.as_ref(), &BundleEngineConfig::default());
        assert!(run.solution.check_feasible(&a4).is_ok());
        let alg = run.solution.value(&a4);
        let opt = figure4_optimum(7, 4);
        t.row(vec![
            "bundle".into(),
            s.name().into(),
            "figure4(7,4)".into(),
            f(alg),
            f(opt),
            f(opt / alg),
            "4/3 (asym.)".into(),
        ]);
    }

    t.note("The theorems quantify over the whole family: swapping the paper's h for h₁,");
    t.note("h₂ or plain hop count never beats the adversarial floors. (On Figure 3 some");
    t.note("scores may do better than 4/3 — the adversary targets worst-case members;");
    t.note("none does better on both constructions.)");
    t
}
