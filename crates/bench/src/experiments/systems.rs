//! Systems experiments: runtime scaling and parallel speedup (E9), and
//! the stop-guard geometry behind Lemma 3.3 (E10).

use std::time::Instant;

use ufp_core::{bounded_ufp, BoundedUfpConfig, Request, StopReason, UfpInstance};
use ufp_netgraph::graph::GraphBuilder;
use ufp_netgraph::ids::NodeId;
use ufp_par::Pool;
use ufp_workloads::{random_ufp, RandomUfpConfig, ValueModel};

use crate::table::{f, f2, Table};

/// E9 — Theorem 3.1's runtime shape: ≤ |R| iterations of |R| shortest
/// paths, and the parallel fan-out speedup.
pub fn e9_scaling() -> Table {
    let mut t = Table::new(
        "E9",
        "Runtime: ≤|R| iterations of per-request shortest paths; parallel fan-out speedup",
        &["|R|", "m", "threads", "iterations", "iter ≤ |R|", "wall ms"],
    );

    for &requests in &[100usize, 200, 400, 800] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 60,
            edges: 400,
            requests,
            epsilon_target: 0.3,
            demand_range: (0.2, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            hotspot_pairs: None,
            seed: 17,
        });
        let cfg = BoundedUfpConfig::with_epsilon(0.3);
        let start = Instant::now();
        let run = bounded_ufp(&inst, &cfg);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        t.row(vec![
            requests.to_string(),
            inst.graph().num_edges().to_string(),
            "1".into(),
            run.trace.iterations().to_string(),
            (run.trace.iterations() <= requests).to_string(),
            f2(ms),
        ]);
    }

    // Parallel speedup: the fan-out is per distinct source, so the tasks
    // must be coarse (big graph, many sources) before scoped-thread
    // dispatch pays for itself — measured honestly here.
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 300,
        edges: 3000,
        requests: 220,
        epsilon_target: 0.3,
        demand_range: (0.2, 1.0),
        values: ValueModel::Uniform(0.5, 2.0),
        hotspot_pairs: None,
        seed: 17,
    });
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut reference: Option<Vec<u32>> = None;
    for &threads in &[1usize, 2, 4] {
        let cfg = BoundedUfpConfig::with_epsilon(0.3).parallel(Pool::new(threads));
        let start = Instant::now();
        let run = bounded_ufp(&inst, &cfg);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        // Determinism across thread counts.
        let order: Vec<u32> = run.solution.routed.iter().map(|(r, _)| r.0).collect();
        match &reference {
            None => reference = Some(order),
            Some(r) => assert_eq!(r, &order, "parallel run diverged from sequential"),
        }
        t.row(vec![
            "220 (n=300, m=3000)".into(),
            inst.graph().num_edges().to_string(),
            threads.to_string(),
            run.trace.iterations().to_string(),
            "true".into(),
            f2(ms),
        ]);
    }
    t.note("thread sweeps route identical request sequences (deterministic reduction);");
    t.note("speedup comes from the per-iteration Dijkstra fan-out (grouped by source,");
    t.note("persistent worker pool) and is bounded by the hardware parallelism of the");
    t.note(format!(
        "machine running this table (available_parallelism = {hw})."
    ));
    t
}

/// E10 — Lemma 3.3's guard geometry: the dual threshold e^{ε(B−1)} keeps
/// the output feasible and its conservatism vanishes as B grows.
pub fn e10_guard_geometry() -> Table {
    let mut t = Table::new(
        "E10",
        "Lemma 3.3: the stop guard preserves feasibility; utilization → 1 as B grows",
        &[
            "B",
            "eps",
            "routed",
            "capacity",
            "utilization",
            "stop",
            "feasible",
        ],
    );
    let eps = 0.3;
    for &b in &[8usize, 16, 32, 64, 128, 256] {
        // A 3-edge chain of capacity B and 2B identical unit requests:
        // the only contention is the guard itself.
        let cap = b as f64;
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(NodeId(0), NodeId(1), cap);
        gb.add_edge(NodeId(1), NodeId(2), cap);
        gb.add_edge(NodeId(2), NodeId(3), cap);
        let inst = UfpInstance::new(
            gb.build(),
            (0..2 * b)
                .map(|_| Request::new(NodeId(0), NodeId(3), 1.0, 1.0))
                .collect(),
        );
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
        let feasible = run.solution.check_feasible(&inst, false).is_ok();
        let routed = run.solution.len();
        t.row(vec![
            b.to_string(),
            f(eps),
            routed.to_string(),
            b.to_string(),
            f(routed as f64 / b as f64),
            format!("{:?}", run.trace.stop_reason),
            feasible.to_string(),
        ]);
        assert!(feasible, "Lemma 3.3 violated at B={b}");
        assert!(routed <= b, "capacity exceeded at B={b}");
        assert_eq!(run.trace.stop_reason, StopReason::Guard);
    }
    t.note("utilization = routed/B ≈ 1 − (1 + ln(m)/ε)/B: the guard's conservatism is");
    t.note("a vanishing price as the large-capacity regime kicks in — the quantitative");
    t.note("heart of why B = Ω(ln m/ε²) makes 1.58-approximation possible.");
    t
}
