//! Comparison experiments: AGG vs prior art (E7) and the motivation
//! experiments — integrality gap and rounding non-monotonicity (E12).

use ufp_core::baselines::{
    bkv, greedy, randomized_rounding, BkvConfig, GreedyOrder, RoundingConfig,
};
use ufp_core::{
    bounded_ufp, exact_optimum, BoundedUfpConfig, ExactConfig, Request, RequestId, UfpInstance,
};
use ufp_lp::solve_ufp_lp_exact;
use ufp_netgraph::graph::GraphBuilder;
use ufp_netgraph::ids::NodeId;
use ufp_workloads::{figure2, random_ufp, RandomUfpConfig, ValueModel};

use crate::table::{f, Table};

/// E7 — the headline comparison: Bounded-UFP (ratio → e/(e−1)) against
/// the previous best truthful algorithm (BKV, ratio → e), greedy
/// heuristics, and non-truthful randomized rounding.
pub fn e7_baseline_comparison() -> Table {
    let mut t = Table::new(
        "E7",
        "Bounded-UFP vs prior art: who wins, by what factor",
        &[
            "instance",
            "AGG",
            "BKV",
            "grd-val",
            "grd-dens",
            "rounding",
            "OPT bound",
            "AGG/BKV",
        ],
    );

    let mut run_row = |name: String, inst: &UfpInstance, eps: f64| {
        let agg_run = bounded_ufp(inst, &BoundedUfpConfig::with_epsilon(eps));
        assert!(agg_run.solution.check_feasible(inst, false).is_ok());
        let agg = agg_run.solution.value(inst);
        let bkv_run = bkv(inst, &BkvConfig { epsilon: eps });
        assert!(bkv_run.solution.check_feasible(inst, false).is_ok());
        let bkv_v = bkv_run.solution.value(inst);
        let gv = greedy(inst, GreedyOrder::ByValue).value(inst);
        let gd = greedy(inst, GreedyOrder::ByDensity).value(inst);
        let rr = randomized_rounding(
            inst,
            &RoundingConfig {
                epsilon: 0.1,
                lp_epsilon: 0.15,
                lp_max_iterations: 30_000,
                seed: 99,
            },
        )
        .value(inst);
        let bound = agg_run
            .dual_upper_bound()
            .map(f)
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            name,
            f(agg),
            f(bkv_v),
            f(gv),
            f(gd),
            f(rr),
            bound,
            f(agg / bkv_v.max(1e-12)),
        ]);
    };

    // Adversarial family (large capacity so the guard admits eps = 0.5).
    run_row("figure2(64,32)".into(), &figure2(64, 32), 0.5);

    // Random contended instances (hotspot demand ≫ hotspot cuts).
    for seed in [1u64, 2, 3] {
        let b_req = ufp_workloads::required_b(120, 0.3);
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 30,
            edges: 120,
            requests: (25.0 * b_req).ceil() as usize,
            epsilon_target: 0.3,
            demand_range: (0.2, 1.0),
            values: ValueModel::HeavyTail { lo: 0.5, s: 1.0 },
            hotspot_pairs: Some(2),
            seed,
        });
        run_row(format!("random(seed={seed})"), &inst, 0.3);
    }

    t.note("AGG = this paper's Algorithm 1; BKV = one-pass reconstruction of Briest et");
    t.note("al. [7] (previous best truthful, ratio → e). AGG/BKV > 1 is the paper's");
    t.note("improvement; rounding is near-optimal but not truthful (see E12).");
    t.note("Caveat on figure2: greedy's hop-shortest tie-break happens to route s_i via");
    t.note("v_i (the optimal matching) — the lower bound binds the *worst-case* member");
    t.note("of the reasonable family (E2), not every heuristic on every tie-break.");
    t
}

/// A tiny two-request fixture whose LP optimum changes structure as one
/// request's value moves — the hunting ground for a rounding
/// non-monotonicity witness.
fn witness_instance(seed: u64) -> UfpInstance {
    // Contended on purpose (hotspots): the LP must be fractional and the
    // alteration pass active, otherwise raising a bid perturbs nothing.
    random_ufp(&RandomUfpConfig {
        nodes: 8,
        edges: 24,
        requests: 24,
        epsilon_target: 0.6,
        demand_range: (0.4, 1.0),
        values: ValueModel::Uniform(0.5, 2.0),
        hotspot_pairs: Some(2),
        seed,
    })
}

/// E12 — the paper's motivation, in two parts. (a) The integrality gap of
/// the Figure 1 program tends to 1 as B grows, which is why the
/// large-capacity regime is where (1+ε) is possible at all. (b) With the
/// coins fixed, randomized rounding is *not* monotone: we exhibit a
/// concrete witness where raising a bid flips an agent from selected to
/// rejected — the precise failure that rules it out for truthfulness.
pub fn e12_integrality_gap_and_rounding() -> Table {
    let mut t = Table::new(
        "E12",
        "§1 motivation: integrality gap → 1+ε for large B; randomized rounding is non-monotone",
        &["series", "B", "OPT_frac", "OPT_int", "gap"],
    );

    // (a) Integrality gap on a bottleneck edge of capacity 1.5·B with 3B
    // unit requests. OPT_int = ⌊1.5B⌋ in closed form (one edge, unit
    // demands); branch-and-bound on equal-value instances is exponential,
    // so we verify the formula with BnB only at B ≤ 2.
    for &b in &[1usize, 3, 5, 9, 17, 33] {
        // Odd B keeps 1.5B fractional, so the gap decays visibly to 1.
        let cap = 1.5 * b as f64;
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(NodeId(0), NodeId(1), cap);
        let requests: Vec<Request> = (0..3 * b)
            .map(|_| Request::new(NodeId(0), NodeId(1), 1.0, 1.0))
            .collect();
        let inst = UfpInstance::new(gb.build(), requests);
        let frac = solve_ufp_lp_exact(inst.graph(), &inst.to_commodities());
        let int_value = cap.floor();
        if b <= 2 {
            let bnb = exact_optimum(&inst, &ExactConfig::default());
            assert!((bnb.value - int_value).abs() < 1e-9, "closed form wrong");
        }
        t.row(vec![
            "bottleneck".into(),
            b.to_string(),
            f(frac.objective),
            f(int_value),
            f(frac.objective / int_value),
        ]);
    }

    // (a') Same trend on a diamond (two disjoint 2-hop paths of capacity
    // 1.25·B each): OPT_int = 2·⌊1.25B⌋, OPT_frac = min(4B, 2.5B).
    for &b in &[1usize, 2, 4, 8, 16] {
        let cap = 1.25 * b as f64;
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(NodeId(0), NodeId(1), cap);
        gb.add_edge(NodeId(1), NodeId(3), cap);
        gb.add_edge(NodeId(0), NodeId(2), cap);
        gb.add_edge(NodeId(2), NodeId(3), cap);
        let requests: Vec<Request> = (0..4 * b)
            .map(|_| Request::new(NodeId(0), NodeId(3), 1.0, 1.0))
            .collect();
        let inst = UfpInstance::new(gb.build(), requests);
        let frac = solve_ufp_lp_exact(inst.graph(), &inst.to_commodities());
        let int_value = 2.0 * cap.floor();
        if b <= 2 {
            let bnb = exact_optimum(&inst, &ExactConfig::default());
            assert!((bnb.value - int_value).abs() < 1e-9, "closed form wrong");
        }
        t.row(vec![
            "diamond".into(),
            b.to_string(),
            f(frac.objective),
            f(int_value),
            f(frac.objective / int_value),
        ]);
    }

    // (b) Non-monotonicity witness for randomized rounding.
    let mut witness: Option<String> = None;
    'search: for seed in 0..60u64 {
        let inst = witness_instance(seed);
        let cfg = RoundingConfig {
            epsilon: 0.1,
            seed: 1234,
            ..Default::default()
        };
        let base = randomized_rounding(&inst, &cfg);
        for agent in inst.request_ids() {
            if !base.contains(agent) {
                continue;
            }
            for factor in [1.2, 1.5, 2.0, 4.0] {
                let raised = inst.with_declared_type(
                    agent,
                    inst.request(agent).demand,
                    inst.request(agent).value * factor,
                );
                let res = randomized_rounding(&raised, &cfg);
                if !res.contains(agent) {
                    witness = Some(format!(
                        "instance seed {seed}, agent {agent}: selected at value {v:.3}, \
                         REJECTED after raising to {v2:.3} (coins fixed)",
                        v = inst.request(agent).value,
                        v2 = inst.request(agent).value * factor,
                    ));
                    break 'search;
                }
            }
        }
    }
    match witness {
        Some(w) => {
            t.note(format!("rounding non-monotonicity witness: {w}"));
            t.note("this is exactly why randomized rounding 'cannot be employed' (paper §1).");
        }
        None => t.note("no rounding monotonicity witness found in the search budget (unexpected)"),
    }
    t.note("gap column: OPT_frac/OPT_int → 1 as B grows (the 1+ε integrality-gap regime).");

    // A sanity check the bounded algorithms pass trivially but rounding's
    // witness makes vivid: Bounded-UFP never drops an agent who raises.
    let inst = witness_instance(0);
    let cfg = BoundedUfpConfig::with_epsilon(0.6);
    let base = bounded_ufp(&inst, &cfg);
    let mut monotone_ok = true;
    for agent in inst.request_ids() {
        if !base.solution.contains(agent) {
            continue;
        }
        for factor in [1.2, 2.0, 4.0] {
            let raised = inst.with_declared_type(
                agent,
                inst.request(agent).demand,
                inst.request(agent).value * factor,
            );
            if !bounded_ufp(&raised, &cfg).solution.contains(agent) {
                monotone_ok = false;
            }
        }
    }
    t.note(format!(
        "Bounded-UFP under the same probes: monotone = {monotone_ok} (Lemma 3.4)"
    ));
    let _ = RequestId(0); // keep the import used even if probes shrink
    t
}
