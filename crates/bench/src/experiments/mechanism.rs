//! E8 — Theorem 2.3 / Lemma 3.4 / Corollary 4.2: monotonicity and
//! truthfulness of the mechanisms, verified black-box.

use ufp_auction::BoundedMucaConfig;
use ufp_core::BoundedUfpConfig;
use ufp_mechanism::{
    verify_ufp_type_truthfulness, verify_value_monotonicity, verify_value_truthfulness,
    CriticalValueMechanism, MucaAllocator, UfpAllocator,
};
use ufp_workloads::{random_auction, random_ufp, RandomAuctionConfig, RandomUfpConfig};

use crate::table::{f, Table};

/// E8 — empirical truthfulness: monotonicity probes, value-lie probes
/// under critical-value payments, and UFP joint (demand, value) lies.
pub fn e8_truthfulness() -> Table {
    let mut t = Table::new(
        "E8",
        "Theorem 2.3: monotone + exact ⇒ truthful — black-box verification",
        &["check", "setting", "probes", "violations", "worst lie gain"],
    );

    let ufp_cfg = BoundedUfpConfig::with_epsilon(0.4);
    let lie_factors = [0.2, 0.5, 0.8, 1.25, 2.0, 5.0];
    let up_factors = [1.5, 3.0, 10.0];

    for seed in [1u64, 2] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 12,
            edges: 50,
            requests: 20,
            epsilon_target: 0.4,
            seed,
            ..Default::default()
        });
        let alloc = UfpAllocator {
            config: ufp_cfg.clone(),
        };
        let mono = verify_value_monotonicity(&alloc, &inst, &up_factors);
        t.row(vec![
            "UFP value-monotonicity (Lemma 3.4)".into(),
            format!("random seed={seed}"),
            mono.probes.to_string(),
            mono.violations.to_string(),
            "-".into(),
        ]);
        let mech = CriticalValueMechanism::new(alloc);
        let truth = verify_value_truthfulness(&mech, &inst, &lie_factors);
        t.row(vec![
            "UFP value-truthfulness".into(),
            format!("random seed={seed}"),
            truth.probes.to_string(),
            truth.violations.to_string(),
            f(truth.worst_gain),
        ]);
        let joint = verify_ufp_type_truthfulness(&inst, &ufp_cfg, 6, seed);
        t.row(vec![
            "UFP (demand,value)-truthfulness".into(),
            format!("random seed={seed}"),
            joint.probes.to_string(),
            joint.violations.to_string(),
            f(joint.worst_gain),
        ]);
    }

    // MUCA side (Corollary 4.2 regime: value lies only; bundle shrinking
    // is covered by unit tests).
    for seed in [3u64, 4] {
        let a = random_auction(&RandomAuctionConfig {
            items: 12,
            bids: 18,
            bundle_size: (1, 3),
            epsilon_target: 0.4,
            seed,
            ..Default::default()
        });
        let alloc = MucaAllocator {
            config: BoundedMucaConfig::with_epsilon(0.4),
        };
        let mono = verify_value_monotonicity(&alloc, &a, &up_factors);
        t.row(vec![
            "MUCA value-monotonicity".into(),
            format!("random seed={seed}"),
            mono.probes.to_string(),
            mono.violations.to_string(),
            "-".into(),
        ]);
        let mech = CriticalValueMechanism::new(alloc);
        let truth = verify_value_truthfulness(&mech, &a, &lie_factors);
        t.row(vec![
            "MUCA value-truthfulness (Thm 4.1)".into(),
            format!("random seed={seed}"),
            truth.probes.to_string(),
            truth.violations.to_string(),
            f(truth.worst_gain),
        ]);
    }

    t.note("violations must be 0 everywhere; 'worst lie gain' is bounded by the payment");
    t.note("bisection tolerance (≤ 1e-5), i.e. no lie beats truth-telling.");
    t
}
