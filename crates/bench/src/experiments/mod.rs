//! The experiment suite: one function per quantitative claim of the
//! paper. See DESIGN.md §3 for the experiment ↔ theorem index.

pub mod approx;
pub mod comparison;
pub mod lower_bounds;
pub mod mechanism;
pub mod systems;

use crate::table::Table;

pub use approx::{e1_thm31_bounded_ufp, e5_thm41_bounded_muca, e6_thm51_repetitions};
pub use comparison::{e12_integrality_gap_and_rounding, e7_baseline_comparison};
pub use lower_bounds::{
    e11_score_ablation, e2_figure2_lower_bound, e3_figure3_lower_bound, e4_figure4_lower_bound,
};
pub use mechanism::e8_truthfulness;
pub use systems::{e10_guard_geometry, e9_scaling};

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 12] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
];

/// Run one experiment by id (case-insensitive).
pub fn run_experiment(id: &str) -> Option<Table> {
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e1_thm31_bounded_ufp(),
        "e2" => e2_figure2_lower_bound(),
        "e3" => e3_figure3_lower_bound(),
        "e4" => e4_figure4_lower_bound(),
        "e5" => e5_thm41_bounded_muca(),
        "e6" => e6_thm51_repetitions(),
        "e7" => e7_baseline_comparison(),
        "e8" => e8_truthfulness(),
        "e9" => e9_scaling(),
        "e10" => e10_guard_geometry(),
        "e11" => e11_score_ablation(),
        "e12" => e12_integrality_gap_and_rounding(),
        _ => return None,
    })
}

/// Run the full suite.
pub fn run_all() -> Vec<Table> {
    ALL_IDS
        .iter()
        .map(|id| run_experiment(id).expect("known id"))
        .collect()
}
