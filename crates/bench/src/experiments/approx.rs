//! Upper-bound experiments: Theorems 3.1 (E1), 4.1 (E5), 5.1 (E6).

use ufp_auction::{bounded_muca, exact_auction_optimum, BoundedMucaConfig};
use ufp_core::{bounded_ufp, bounded_ufp_repeat, BoundedUfpConfig, RepeatConfig};
use ufp_lp::solve_ufp_lp_exact;
use ufp_workloads::{random_auction, random_ufp, RandomAuctionConfig, RandomUfpConfig, ValueModel};

use crate::table::{f, Table};

const E: f64 = std::f64::consts::E;

/// Theorem 3.1 guarantee for accuracy parameter ε (Lemma 3.8 form):
/// `(1 + 6ε)·e/(e−1)`.
fn thm31_guarantee(eps: f64) -> f64 {
    (1.0 + 6.0 * eps) * E / (E - 1.0)
}

/// E1 — Theorem 3.1: Bounded-UFP's ratio vs exact LP optima (small
/// instances) and vs its own dual certificate (large instances), across ε.
pub fn e1_thm31_bounded_ufp() -> Table {
    let mut t = Table::new(
        "E1",
        "Theorem 3.1: Bounded-UFP(ε) is a (1+6ε)·e/(e−1)-approximation for B ≥ ln(m)/ε²",
        &[
            "block",
            "eps",
            "m",
            "|R|",
            "B",
            "ALG",
            "OPT bound",
            "ratio",
            "guarantee",
            "ok",
        ],
    );

    // Block A: exact fractional optimum via simplex on small instances.
    for &eps in &[0.5, 0.35, 0.25] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 8,
            edges: 24,
            requests: 10,
            epsilon_target: eps,
            demand_range: (0.3, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            hotspot_pairs: None,
            seed: 11,
        });
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
        assert!(run.solution.check_feasible(&inst, false).is_ok());
        let alg = run.solution.value(&inst);
        let lp = solve_ufp_lp_exact(inst.graph(), &inst.to_commodities());
        let ratio = lp.objective / alg;
        let guar = thm31_guarantee(eps);
        t.row(vec![
            "exact-LP".into(),
            f(eps),
            inst.graph().num_edges().to_string(),
            inst.num_requests().to_string(),
            f(inst.bound_b()),
            f(alg),
            f(lp.objective),
            f(ratio),
            f(guar),
            (ratio <= guar + 1e-6).to_string(),
        ]);
    }

    // Block B: certified dual bound (Claim 3.6) on larger instances.
    // Demand must scale with B (capacities grow as ln(m)/ε²) or the run
    // exhausts the request list and the guard — the regime the theorem
    // actually analyzes — never binds.
    for &eps in &[0.5, 0.3, 0.2, 0.1] {
        let b_req = ufp_workloads::required_b(120, eps);
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 40,
            edges: 120,
            requests: (25.0 * b_req).ceil() as usize,
            epsilon_target: eps,
            demand_range: (0.2, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            hotspot_pairs: Some(2),
            seed: 23,
        });
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
        assert!(run.solution.check_feasible(&inst, false).is_ok());
        let alg = run.solution.value(&inst);
        let bound = run.tight_upper_bound(&inst).expect("claim 3.6 certificate");
        let ratio = bound / alg;
        let guar = thm31_guarantee(eps);
        t.row(vec![
            "dual-cert".into(),
            f(eps),
            inst.graph().num_edges().to_string(),
            inst.num_requests().to_string(),
            f(inst.bound_b()),
            f(alg),
            f(bound),
            f(ratio),
            f(guar),
            (ratio <= guar + 1e-6).to_string(),
        ]);
    }

    t.note("ratio = (upper bound on OPT) / ALG; must stay below the guarantee column.");
    t.note("exact-LP block compares against the simplex-solved Figure 1 relaxation;");
    t.note("dual-cert block against the run's own Claim 3.6 certificate.");
    t
}

/// E5 — Theorem 4.1: Bounded-MUCA's ratio vs exact optima and vs its dual
/// certificate.
pub fn e5_thm41_bounded_muca() -> Table {
    let mut t = Table::new(
        "E5",
        "Theorem 4.1: Bounded-MUCA(ε) is a (1+6ε)·e/(e−1)-approximation for B ≥ ln(m)/ε²",
        &[
            "block",
            "eps",
            "m",
            "bids",
            "B",
            "ALG",
            "OPT bound",
            "ratio",
            "guarantee",
            "ok",
        ],
    );

    // Block A: exact integral optimum (branch and bound), small auctions.
    for &eps in &[0.5, 0.35] {
        let a = random_auction(&RandomAuctionConfig {
            items: 10,
            bids: 16,
            bundle_size: (1, 3),
            epsilon_target: eps,
            seed: 5,
            ..Default::default()
        });
        let run = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps));
        assert!(run.solution.check_feasible(&a).is_ok());
        let alg = run.solution.value(&a);
        let (opt, _) = exact_auction_optimum(&a);
        let ratio = opt / alg;
        let guar = thm31_guarantee(eps);
        t.row(vec![
            "exact-BnB".into(),
            f(eps),
            a.num_items().to_string(),
            a.num_bids().to_string(),
            f(a.bound_b()),
            f(alg),
            f(opt),
            f(ratio),
            f(guar),
            (ratio <= guar + 1e-6).to_string(),
        ]);
    }

    // Block B: certified dual bound on larger auctions (bids scale with
    // the multiplicities so the guard regime binds).
    for &eps in &[0.5, 0.3, 0.2, 0.1] {
        let b_req = ufp_workloads::required_multiplicity(40, eps);
        let a = random_auction(&RandomAuctionConfig {
            items: 40,
            bids: (30.0 * b_req).ceil() as usize,
            bundle_size: (2, 6),
            epsilon_target: eps,
            seed: 7,
            ..Default::default()
        });
        let run = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps));
        assert!(run.solution.check_feasible(&a).is_ok());
        let alg = run.solution.value(&a);
        let bound = run.tight_upper_bound(&a).expect("certificate");
        let ratio = bound / alg;
        let guar = thm31_guarantee(eps);
        t.row(vec![
            "dual-cert".into(),
            f(eps),
            a.num_items().to_string(),
            a.num_bids().to_string(),
            f(a.bound_b()),
            f(alg),
            f(bound),
            f(ratio),
            f(guar),
            (ratio <= guar + 1e-6).to_string(),
        ]);
    }

    t.note("Algorithm 2 inherits Algorithm 1's analysis; the certified ratio must clear");
    t.note("the same (1+6ε)·e/(e−1) bar. Against exact optima it is typically far better.");
    t
}

/// E6 — Theorem 5.1: with repetitions the ratio collapses to 1+6ε, and
/// the iteration count respects the m·c_max/d_min bound.
pub fn e6_thm51_repetitions() -> Table {
    let mut t = Table::new(
        "E6",
        "Theorem 5.1: Bounded-UFP-Repeat(ε) is a (1+6ε)-approximation (vs e/(e−1) without repetitions)",
        &["eps", "m", "B", "ALG", "OPT bound", "ratio", "1+6eps", "ok", "iters", "iter bound"],
    );
    for &eps in &[0.5, 0.3, 0.2] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 10,
            edges: 30,
            requests: 20,
            epsilon_target: eps,
            demand_range: (0.5, 1.0),
            values: ValueModel::PerUnitDemand(1.0, 2.0),
            hotspot_pairs: Some(4),
            seed: 31,
        });
        let run = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(eps));
        assert!(run.solution.check_feasible(&inst, true).is_ok());
        let alg = run.solution.value(&inst);
        let bound = run.dual_upper_bound().expect("claim 5.2 certificate");
        let ratio = bound / alg;
        let guar = 1.0 + 6.0 * eps;
        t.row(vec![
            f(eps),
            inst.graph().num_edges().to_string(),
            f(inst.bound_b()),
            f(alg),
            f(bound),
            f(ratio),
            f(guar),
            (ratio <= guar + 1e-6).to_string(),
            run.trace.iterations().to_string(),
            run.iteration_bound.to_string(),
        ]);
    }
    t.note("Claim 5.2 certificate: OPT_frac ≤ min_i D(i)/α(i). Note the contrast with E1:");
    t.note("allowing repetitions removes the e/(e−1) barrier exactly as §5 claims.");
    t
}
