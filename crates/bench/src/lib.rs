//! # ufp-bench
//!
//! The experiment harness regenerating every quantitative claim of
//! *"Truthful Unsplittable Flow for Large Capacity Networks"*:
//!
//! * [`experiments`] — E1..E12, each certifying one theorem / figure
//!   (index in DESIGN.md §3; recorded results in EXPERIMENTS.md);
//! * [`table`] — plain-text/CSV result tables.
//!
//! Run the suite with:
//!
//! ```text
//! cargo run -p ufp-bench --release --bin experiments -- all
//! cargo run -p ufp-bench --release --bin experiments -- e2 e3
//! ```
//!
//! Criterion timing benches (`cargo bench`) live in `benches/`.

pub mod experiments;
pub mod table;

pub use experiments::{run_all, run_experiment, ALL_IDS};
pub use table::Table;
