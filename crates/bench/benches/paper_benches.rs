//! Criterion timing benches, one per reproduced table/figure — these
//! measure the *cost* of regenerating each paper claim (the claims
//! themselves are checked by the `experiments` binary and the test
//! suite). Sizes are scaled down so `cargo bench` completes in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ufp_auction::{
    bounded_muca, iterative_bundle_minimizer, BoundedMucaConfig, BundleEngineConfig,
    MucaPrimalDualScore,
};
use ufp_core::baselines::{bkv, greedy, BkvConfig, GreedyOrder};
use ufp_core::{
    bounded_ufp, bounded_ufp_repeat, iterative_path_minimizer, BoundedUfpConfig, EngineConfig,
    PrimalDualScore, RepeatConfig, TieBreak,
};
use ufp_workloads as w;
use ufp_workloads::{random_auction, random_ufp, RandomAuctionConfig, RandomUfpConfig};

/// E1/Theorem 3.1: one Bounded-UFP run on a contended random instance.
fn thm31_bounded_ufp(c: &mut Criterion) {
    let b = w::required_b(120, 0.3);
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 40,
        edges: 120,
        requests: (5.0 * b).ceil() as usize,
        epsilon_target: 0.3,
        hotspot_pairs: Some(2),
        seed: 23,
        ..Default::default()
    });
    let cfg = BoundedUfpConfig::with_epsilon(0.3);
    c.bench_function("thm31_bounded_ufp", |bench| {
        bench.iter(|| black_box(bounded_ufp(&inst, &cfg)))
    });
}

/// E2/Figure 2: the adversarial schedule (fast simulator + engine).
fn fig2_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_lower_bound");
    for &(b, ell) in &[(4usize, 64usize), (8, 128)] {
        group.bench_with_input(
            BenchmarkId::new("simulator", format!("B{b}_l{ell}")),
            &(b, ell),
            |bench, &(b, ell)| {
                bench.iter(|| black_box(w::figure2::simulate_figure2_adversary(ell, b, 0.5)))
            },
        );
    }
    let inst = w::figure2(16, 2);
    let cfg = EngineConfig {
        tie: TieBreak::HighestSecondNode,
        ..Default::default()
    };
    group.bench_function("generic_engine_B2_l16", |bench| {
        bench.iter(|| black_box(iterative_path_minimizer(&inst, &PrimalDualScore, &cfg)))
    });
    group.finish();
}

/// E3/Figure 3: the hub-adversarial engine run.
fn fig3_lower_bound(c: &mut Criterion) {
    let inst = w::figure3(32);
    let cfg = EngineConfig {
        tie: TieBreak::ViaHub(w::figure3_hub()),
        ..Default::default()
    };
    c.bench_function("fig3_lower_bound_B32", |bench| {
        bench.iter(|| black_box(iterative_path_minimizer(&inst, &PrimalDualScore, &cfg)))
    });
}

/// E4/Figure 4: the bundle-engine run.
fn fig4_muca_lower_bound(c: &mut Criterion) {
    let a = w::figure4(15, 4, 240);
    c.bench_function("fig4_muca_lower_bound_p15", |bench| {
        bench.iter(|| {
            black_box(iterative_bundle_minimizer(
                &a,
                &MucaPrimalDualScore,
                &BundleEngineConfig::default(),
            ))
        })
    });
}

/// E5/Theorem 4.1: Bounded-MUCA on a contended auction.
fn thm41_bounded_muca(c: &mut Criterion) {
    let b = w::required_multiplicity(40, 0.3);
    let a = random_auction(&RandomAuctionConfig {
        items: 40,
        bids: (10.0 * b).ceil() as usize,
        bundle_size: (2, 6),
        epsilon_target: 0.3,
        seed: 7,
        ..Default::default()
    });
    let cfg = BoundedMucaConfig::with_epsilon(0.3);
    c.bench_function("thm41_bounded_muca", |bench| {
        bench.iter(|| black_box(bounded_muca(&a, &cfg)))
    });
}

/// E6/Theorem 5.1: the repetitions variant.
fn thm51_repeat(c: &mut Criterion) {
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 10,
        edges: 30,
        requests: 20,
        epsilon_target: 0.4,
        demand_range: (0.5, 1.0),
        hotspot_pairs: Some(4),
        seed: 31,
        ..Default::default()
    });
    let cfg = RepeatConfig::with_epsilon(0.4);
    c.bench_function("thm51_repeat", |bench| {
        bench.iter(|| black_box(bounded_ufp_repeat(&inst, &cfg)))
    });
}

/// E7: each baseline on the same contended instance.
fn baseline_comparison(c: &mut Criterion) {
    let b = w::required_b(120, 0.3);
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 30,
        edges: 120,
        requests: (5.0 * b).ceil() as usize,
        epsilon_target: 0.3,
        hotspot_pairs: Some(2),
        seed: 1,
        ..Default::default()
    });
    let mut group = c.benchmark_group("baseline_comparison");
    let agg_cfg = BoundedUfpConfig::with_epsilon(0.3);
    group.bench_function("bounded_ufp", |bench| {
        bench.iter(|| black_box(bounded_ufp(&inst, &agg_cfg)))
    });
    let bkv_cfg = BkvConfig { epsilon: 0.3 };
    group.bench_function("bkv_one_pass", |bench| {
        bench.iter(|| black_box(bkv(&inst, &bkv_cfg)))
    });
    group.bench_function("greedy_by_density", |bench| {
        bench.iter(|| black_box(greedy(&inst, GreedyOrder::ByDensity)))
    });
    group.finish();
}

criterion_group!(
    paper,
    thm31_bounded_ufp,
    fig2_lower_bound,
    fig3_lower_bound,
    fig4_muca_lower_bound,
    thm41_bounded_muca,
    thm51_repeat,
    baseline_comparison
);
criterion_main!(paper);
