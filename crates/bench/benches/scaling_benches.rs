//! Scaling and substrate benches (experiment E9's timing companion):
//! Bounded-UFP vs request count and thread count, the Dijkstra hot path,
//! the LP substrate, and critical-value payment computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ufp_core::{bounded_ufp, BoundedUfpConfig};
use ufp_engine::{Engine, EngineConfig, EventLevel};
use ufp_lp::{solve_fractional_ufp, solve_ufp_lp_exact};
use ufp_mechanism::{critical_value, PaymentConfig, SingleParamAllocator, UfpAllocator};
use ufp_netgraph::dijkstra::Dijkstra;
use ufp_netgraph::generators;
use ufp_netgraph::ids::NodeId;
use ufp_par::Pool;
use ufp_workloads::arrivals::{arrival_trace, ArrivalProcess, ArrivalTraceConfig};
use ufp_workloads::{random_ufp, required_b, RandomUfpConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bounded-UFP wall time vs |R|.
fn scaling_requests(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_requests");
    group.sample_size(10);
    for &requests in &[100usize, 200, 400] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 60,
            edges: 400,
            requests,
            epsilon_target: 0.3,
            seed: 17,
            ..Default::default()
        });
        let cfg = BoundedUfpConfig::with_epsilon(0.3);
        group.bench_with_input(BenchmarkId::from_parameter(requests), &inst, |b, inst| {
            b.iter(|| black_box(bounded_ufp(inst, &cfg)))
        });
    }
    group.finish();
}

/// Bounded-UFP wall time vs thread count (the E9 speedup series).
/// The fan-out parallelizes per-source Dijkstra trees, so the tasks must
/// be coarse (large graph) before threading pays — same caveat as E9.
fn scaling_threads(c: &mut Criterion) {
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 300,
        edges: 3000,
        requests: 150,
        epsilon_target: 0.3,
        seed: 17,
        ..Default::default()
    });
    let mut group = c.benchmark_group("scaling_threads");
    group.sample_size(10);
    for &threads in &[1usize, 2] {
        let cfg = BoundedUfpConfig::with_epsilon(0.3).parallel(Pool::new(threads));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| black_box(bounded_ufp(&inst, cfg)))
        });
    }
    group.finish();
}

/// The Dijkstra hot path in isolation (workspace reuse).
fn dijkstra_hot_path(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::gnm_digraph(200, 2000, (1.0, 2.0), &mut rng);
    let weights: Vec<f64> = (0..g.num_edges()).map(|i| 1.0 + (i % 13) as f64).collect();
    let mut dij = Dijkstra::new(g.num_nodes());
    c.bench_function("dijkstra_200n_2000m", |b| {
        b.iter(|| {
            let r = dij.shortest_path(&g, &weights, NodeId(0), NodeId(199), |_| true);
            black_box(r)
        })
    });
}

/// LP substrate: exact simplex vs Garg–Könemann on the same instance.
fn lp_substrate(c: &mut Criterion) {
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 8,
        edges: 24,
        requests: 8,
        epsilon_target: 0.5,
        seed: 3,
        ..Default::default()
    });
    let commodities = inst.to_commodities();
    let mut group = c.benchmark_group("lp_substrate");
    group.sample_size(10);
    group.bench_function("simplex_exact", |b| {
        b.iter(|| black_box(solve_ufp_lp_exact(inst.graph(), &commodities)))
    });
    group.bench_function("garg_konemann", |b| {
        b.iter(|| {
            black_box(solve_fractional_ufp(
                inst.graph(),
                &commodities,
                0.1,
                50_000,
            ))
        })
    });
    group.finish();
}

/// Critical-value payment for one winner (bisection cost).
fn payment_bisection(c: &mut Criterion) {
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 10,
        edges: 40,
        requests: 15,
        epsilon_target: 0.4,
        hotspot_pairs: Some(2),
        seed: 44,
        ..Default::default()
    });
    let alloc = UfpAllocator {
        config: BoundedUfpConfig::with_epsilon(0.4),
    };
    let selected = alloc.selected(&inst);
    let winner = (0..inst.num_requests())
        .find(|&a| selected[a])
        .expect("some winner");
    let cfg = PaymentConfig::default();
    c.bench_function("payment_bisection", |b| {
        b.iter(|| black_box(critical_value(&alloc, &inst, winner, &cfg)))
    });
}

/// Engine throughput: requests/sec vs batch size at fixed graph size.
/// The same 2048-request stream is replayed with different chop points,
/// so this measures pure batching overhead + per-epoch allocator cost —
/// the perf trajectory future engine PRs are judged against.
fn engine_throughput(c: &mut Criterion) {
    let epsilon = 0.5;
    let (nodes, edges) = (200usize, 1000usize);
    let b = required_b(edges, epsilon).ceil();
    let graph = generators::gnm_digraph(nodes, edges, (b, 2.0 * b), &mut StdRng::seed_from_u64(23));
    let trace = arrival_trace(
        &graph,
        &ArrivalTraceConfig {
            epochs: 1,
            process: ArrivalProcess::Poisson { mean: 2048.0 },
            hotspot_pairs: Some(16),
            seed: 23,
            ..Default::default()
        },
    );
    let stream = &trace[0];
    // One shared graph across every benched engine — engine construction
    // is an Arc bump, not a CSR copy, matching production use.
    let shared = std::sync::Arc::new(graph);
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for &batch_size in &[64usize, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &batch_size,
            |bench, &batch_size| {
                bench.iter(|| {
                    let config = EngineConfig {
                        events: EventLevel::Epoch,
                        ..EngineConfig::with_epsilon(epsilon)
                    };
                    let mut engine = Engine::from_shared(std::sync::Arc::clone(&shared), config);
                    for batch in stream.chunks(batch_size) {
                        black_box(engine.submit_batch(batch));
                    }
                    black_box(engine.metrics().accepted)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    scaling,
    scaling_requests,
    scaling_threads,
    dijkstra_hot_path,
    lp_substrate,
    payment_bisection,
    engine_throughput
);
criterion_main!(scaling);
