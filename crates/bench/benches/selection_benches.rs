//! PR 4 benches: the incremental (dirty-set) selection loop vs the full
//! per-iteration fan-out, and the Dijkstra queue backends underneath
//! them.
//!
//! * `selection_strategy/*` — one Bounded-UFP epoch at growing request
//!   counts under both [`SelectionStrategy`] variants. The outputs are
//!   bit-identical (asserted here on the side); only wall time differs.
//!   The headline trajectory at 10³/10⁴/10⁵-request epochs lives in
//!   `BENCH_PR4.json` (regenerate with `scripts/bench_pr4.sh`).
//! * `dijkstra_heap/*` — full shortest-path trees under the indexed
//!   4-ary decrease-key heap vs the lazy binary heap (the satellite that
//!   decided [`HeapKind`]'s default: run both, keep the winner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ufp_core::{bounded_ufp, BoundedUfpConfig, SelectionStrategy};
use ufp_netgraph::dijkstra::{Dijkstra, HeapKind, Targets};
use ufp_netgraph::generators;
use ufp_netgraph::ids::NodeId;
use ufp_workloads::{random_ufp, RandomUfpConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One epoch allocation, incremental vs fan-out, vs request count.
fn selection_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_strategy");
    group.sample_size(10);
    for &requests in &[200usize, 1000, 4000] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 200,
            edges: 1200,
            requests,
            epsilon_target: 0.4,
            seed: 17,
            ..Default::default()
        });
        for (label, strategy) in [
            ("fanout", SelectionStrategy::FanOut),
            ("incremental", SelectionStrategy::Incremental),
        ] {
            let cfg = BoundedUfpConfig::with_epsilon(0.4).with_selection(strategy);
            group.bench_with_input(BenchmarkId::new(label, requests), &inst, |b, inst| {
                b.iter(|| black_box(bounded_ufp(inst, &cfg)))
            });
        }
        // Side assertion (outside timing): strategies agree on this input.
        let fan = bounded_ufp(
            &inst,
            &BoundedUfpConfig::with_epsilon(0.4).with_selection(SelectionStrategy::FanOut),
        );
        let inc = bounded_ufp(
            &inst,
            &BoundedUfpConfig::with_epsilon(0.4).with_selection(SelectionStrategy::Incremental),
        );
        assert_eq!(fan.solution.routed.len(), inc.solution.routed.len());
        for (a, b) in fan.solution.routed.iter().zip(&inc.solution.routed) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.nodes(), b.1.nodes());
        }
    }
    group.finish();
}

/// Full-tree Dijkstra under both queue backends. This is the
/// measurement behind `HeapKind`'s default.
fn dijkstra_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra_heap");
    group.sample_size(10);
    for &(nodes, edges) in &[(500usize, 4000usize), (2000, 20000)] {
        let mut rng = StdRng::seed_from_u64(5);
        let graph = generators::gnm_digraph(nodes, edges, (10.0, 20.0), &mut rng);
        let weights: Vec<f64> = (0..graph.num_edges())
            .map(|i| 0.05 + ((i * 37) % 97) as f64 / 50.0)
            .collect();
        for (label, kind) in [
            ("indexed4", HeapKind::Indexed4),
            ("lazy_binary", HeapKind::LazyBinary),
        ] {
            // Full shortest-path trees (the grouped fan-out pattern).
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_tree"), format!("{nodes}n_{edges}e")),
                &graph,
                |b, graph| {
                    let mut dij = Dijkstra::with_heap(graph.num_nodes(), kind);
                    let mut src = 0u32;
                    b.iter(|| {
                        dij.run(
                            graph,
                            &weights,
                            NodeId(src % nodes as u32),
                            Targets::All,
                            |_| true,
                        );
                        src = src.wrapping_add(1);
                        black_box(dij.distance(NodeId((nodes - 1) as u32)))
                    })
                },
            );
            // Targeted early-exit queries (the lazy-refresh / winner
            // re-derivation pattern).
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_one"), format!("{nodes}n_{edges}e")),
                &graph,
                |b, graph| {
                    let mut dij = Dijkstra::with_heap(graph.num_nodes(), kind);
                    let mut q = 0u32;
                    b.iter(|| {
                        let s = NodeId(q.wrapping_mul(7919) % nodes as u32);
                        let t = NodeId((q.wrapping_mul(104729) + 1) % nodes as u32);
                        dij.run(graph, &weights, s, Targets::One(t), |_| true);
                        q = q.wrapping_add(1);
                        black_box(dij.distance(t))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, selection_strategy, dijkstra_heap);
criterion_main!(benches);
