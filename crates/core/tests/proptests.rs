//! Property-based tests for the core algorithms.
//!
//! The invariants under randomized instances:
//!
//! * **Feasibility (Lemma 3.3)** — Bounded-UFP's output never violates a
//!   capacity, for any ε and any instance.
//! * **Optimality sandwich** — ALG ≤ OPT_int ≤ OPT_frac ≤ dual bound.
//! * **Determinism** — parallel == sequential, and reruns are identical.
//! * **Monotonicity (Lemma 3.4)** — raising a winner's value or lowering
//!   its demand never evicts it (the theorem the whole mechanism stands
//!   on, probed across random instances rather than fixtures).
//! * **Consistency** — the engine's `PrimalDualScore` agrees with the
//!   closed form `h(p)` the paper assigns to Algorithm 1.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::{
    bounded_ufp, exact_optimum, iterative_path_minimizer, BoundedUfpConfig, EngineConfig,
    ExactConfig, PrimalDualScore, Request, UfpInstance,
};
use ufp_lp::solve_ufp_lp_exact;
use ufp_netgraph::generators;
use ufp_netgraph::ids::NodeId;
use ufp_par::Pool;

/// Random small instance: G(n, m) digraph with capacities ≥ demand scale,
/// plus connected random requests.
fn arb_instance() -> impl Strategy<Value = (UfpInstance, f64)> {
    (3usize..9, 1usize..30, 1usize..10, any::<u64>(), 1usize..10).prop_map(
        |(n, extra_edges, requests, seed, eps_decile)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let max_edges = n * (n - 1);
            let m = (extra_edges % max_edges).max(2).min(max_edges);
            let cap = 2.0 + (seed % 13) as f64;
            let graph = generators::gnm_digraph(n, m, (cap, cap * 2.0), &mut rng);
            let mut reqs = Vec::new();
            let mut attempts = 0;
            while reqs.len() < requests && attempts < 1000 {
                attempts += 1;
                let src = NodeId(rng.random_range(0..n as u32));
                let dst = NodeId(rng.random_range(0..n as u32));
                if src == dst {
                    continue;
                }
                if !ufp_netgraph::bfs::is_reachable(&graph, src, dst) {
                    continue;
                }
                let demand = rng.random_range(0.1..=1.0);
                let value = rng.random_range(0.1..=3.0);
                reqs.push(Request::new(src, dst, demand, value));
            }
            prop_assume_nonempty(&reqs);
            let eps = eps_decile as f64 / 10.0;
            (UfpInstance::new(graph, reqs), eps)
        },
    )
}

fn prop_assume_nonempty(reqs: &[Request]) {
    // Instances can legitimately end up empty on disconnected graphs;
    // the properties below handle zero-request instances gracefully, so
    // no filtering is required — this is documentation.
    let _ = reqs;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn output_always_feasible((inst, eps) in arb_instance()) {
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
        prop_assert!(run.solution.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn alg_below_exact_below_lp((inst, eps) in arb_instance()) {
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
        let alg = run.solution.value(&inst);
        let exact = exact_optimum(&inst, &ExactConfig::default());
        prop_assert!(alg <= exact.value + 1e-9,
            "ALG {alg} above integral optimum {}", exact.value);
        let lp = solve_ufp_lp_exact(inst.graph(), &inst.to_commodities());
        prop_assert!(exact.value <= lp.objective + 1e-7,
            "integral {} above fractional {}", exact.value, lp.objective);
        if let Some(bound) = run.dual_upper_bound() {
            prop_assert!(bound >= lp.objective - 1e-6,
                "claim 3.6 bound {bound} below LP {}", lp.objective);
        }
    }

    #[test]
    fn deterministic_and_parallel_consistent((inst, eps) in arb_instance()) {
        let cfg = BoundedUfpConfig::with_epsilon(eps);
        let a = bounded_ufp(&inst, &cfg);
        let b = bounded_ufp(&inst, &cfg);
        let c = bounded_ufp(&inst, &cfg.clone().parallel(Pool::new(4)));
        let ids = |r: &ufp_core::UfpRunResult| -> Vec<u32> {
            r.solution.routed.iter().map(|(id, _)| id.0).collect()
        };
        prop_assert_eq!(ids(&a), ids(&b));
        prop_assert_eq!(ids(&a), ids(&c));
    }

    #[test]
    fn monotone_under_random_boosts((inst, eps) in arb_instance()) {
        let cfg = BoundedUfpConfig::with_epsilon(eps);
        let base = bounded_ufp(&inst, &cfg);
        for rid in inst.request_ids() {
            if !base.solution.contains(rid) {
                continue;
            }
            let r = inst.request(rid);
            // Raise value and lower demand simultaneously — the exact
            // direction Definition 2.1 quantifies over.
            let probe = inst.with_declared_type(rid, r.demand * 0.7, r.value * 2.5);
            let run = bounded_ufp(&probe, &cfg);
            prop_assert!(run.solution.contains(rid),
                "winner {rid} evicted by an improved declaration");
        }
    }

    #[test]
    fn engine_never_beats_exact((inst, _eps) in arb_instance()) {
        let run = iterative_path_minimizer(&inst, &PrimalDualScore, &EngineConfig::default());
        prop_assert!(run.solution.check_feasible(&inst, false).is_ok());
        let exact = exact_optimum(&inst, &ExactConfig::default());
        prop_assert!(run.solution.value(&inst) <= exact.value + 1e-9);
    }

    #[test]
    fn engine_output_is_maximal((inst, _eps) in arb_instance()) {
        // The reasonable family routes "until it cannot route more":
        // afterwards no unselected request may have a residual path.
        let run = iterative_path_minimizer(&inst, &PrimalDualScore, &EngineConfig::default());
        let loads = run.solution.edge_loads(&inst);
        for rid in inst.request_ids() {
            if run.solution.contains(rid) {
                continue;
            }
            let req = inst.request(rid);
            let paths = ufp_netgraph::enumerate::simple_paths(
                inst.graph(), req.src, req.dst, usize::MAX, 10_000,
                |e| inst.graph().capacity(e) - loads[e.index()] >= req.demand - 1e-9,
            );
            prop_assert!(paths.is_empty(),
                "engine stopped while {rid} still had a feasible path");
        }
    }
}

/// The identity the paper states in §3.3: Algorithm 1 minimizes
/// `h(p) = (d/v)·Σ (1/c_e)·e^{εB f_e/c_e}`. We replay a Bounded-UFP run
/// and check that, at every iteration, the selected request's normalized
/// weight equals `h` evaluated on the flow state the run had built.
#[test]
fn algorithm1_minimizes_the_paper_h_function() {
    let mut gb = ufp_netgraph::graph::GraphBuilder::directed(4);
    gb.add_edge(NodeId(0), NodeId(1), 6.0);
    gb.add_edge(NodeId(1), NodeId(3), 6.0);
    gb.add_edge(NodeId(0), NodeId(2), 6.0);
    gb.add_edge(NodeId(2), NodeId(3), 6.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..8)
            .map(|i| Request::new(NodeId(0), NodeId(3), 1.0, 1.0 + 0.3 * i as f64))
            .collect(),
    );
    let eps = 0.5;
    let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));

    // Replay: rebuild flow state step by step and verify each selected
    // path's h-score matches exp(ln_alpha) from the trace.
    let b = inst.graph().min_capacity();
    let mut flow = vec![0.0f64; inst.graph().num_edges()];
    for (record, (rid, path)) in run.trace.records.iter().zip(&run.solution.routed) {
        assert_eq!(record.selected, *rid);
        let req = inst.request(*rid);
        let ctx = ufp_core::ScoreCtx {
            graph: inst.graph(),
            flow: &flow,
            epsilon: eps,
            b,
        };
        let h = PrimalDualScore.score(&ctx, req, path);
        let alpha = record.ln_alpha.exp();
        assert!(
            (h - alpha).abs() <= 1e-9 * h.max(1.0),
            "h(p) = {h} but trace alpha = {alpha}"
        );
        for e in path.edges() {
            flow[e.index()] += req.demand;
        }
    }
}

// Needed by the identity test above.
use ufp_core::reasonable::PathScore;
