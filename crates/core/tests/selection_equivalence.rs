//! PR 4's load-bearing contract: [`SelectionStrategy::Incremental`] and
//! [`SelectionStrategy::FanOut`] are **bit-identical** in every
//! observable output — selections, paths, [`IterationRecord`]s (every
//! float compared by bits), stop reasons, carried dual exponents, resume
//! traces, checkpoints, and watch probes — across random graphs, epoch
//! contexts (masked edges, scaled residuals, carried weights),
//! residual-gated path search, and weight re-centering. Everything PR 2
//! (prefix-resumed payments) and PR 3 (snapshots) built on the fan-out
//! loop must keep working unchanged on top of the incremental one.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::{
    bounded_ufp, bounded_ufp_epoch, bounded_ufp_epoch_resume, bounded_ufp_epoch_resume_watch,
    bounded_ufp_epoch_traced, BoundedUfpConfig, EpochContext, EpochOutcome, Request,
    SelectionStrategy, UfpInstance,
};
use ufp_netgraph::generators;
use ufp_netgraph::graph::GraphBuilder;
use ufp_netgraph::ids::NodeId;
use ufp_par::Pool;

/// Random instance with enough request mass that paths collide: a few
/// hotspot pairs concentrate traffic (the dirty-storm case) on top of
/// background pairs (the sparse-dirty case).
fn arb_instance() -> impl Strategy<Value = (UfpInstance, f64)> {
    (4usize..10, 4usize..40, 2usize..36, any::<u64>(), 1usize..10).prop_map(
        |(n, extra_edges, requests, seed, eps_decile)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let max_edges = n * (n - 1);
            let m = (extra_edges % max_edges).max(2).min(max_edges);
            let cap = 3.0 + (seed % 17) as f64;
            let graph = generators::gnm_digraph(n, m, (cap, cap * 2.0), &mut rng);
            let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
            let mut attempts = 0;
            while pairs.len() < 3 && attempts < 400 {
                attempts += 1;
                let src = NodeId(rng.random_range(0..n as u32));
                let dst = NodeId(rng.random_range(0..n as u32));
                if src != dst && ufp_netgraph::bfs::is_reachable(&graph, src, dst) {
                    pairs.push((src, dst));
                }
            }
            let mut reqs = Vec::new();
            if !pairs.is_empty() {
                for i in 0..requests {
                    // Two thirds hotspot traffic, one third background.
                    let (src, dst) = pairs[if i % 3 == 2 {
                        rng.random_range(0..pairs.len())
                    } else {
                        0
                    }];
                    let demand = rng.random_range(0.1..=1.0);
                    let value = rng.random_range(0.1..=4.0);
                    reqs.push(Request::new(src, dst, demand, value));
                }
            }
            let eps = eps_decile as f64 / 10.0;
            (UfpInstance::new(graph, reqs), eps)
        },
    )
}

fn with_strategy(eps: f64, s: SelectionStrategy) -> BoundedUfpConfig {
    BoundedUfpConfig::with_epsilon(eps).with_selection(s)
}

/// Bit-level equality of two epoch outcomes.
fn assert_outcomes_bit_identical(a: &EpochOutcome, b: &EpochOutcome) {
    assert_eq!(
        a.run.solution.routed.len(),
        b.run.solution.routed.len(),
        "selection counts diverged"
    );
    for (x, y) in a.run.solution.routed.iter().zip(&b.run.solution.routed) {
        assert_eq!(x.0, y.0, "selection order diverged");
        assert_eq!(x.1.nodes(), y.1.nodes(), "paths diverged");
        assert_eq!(x.1.edges(), y.1.edges(), "path edges diverged");
    }
    assert_eq!(a.run.trace.stop_reason, b.run.trace.stop_reason);
    assert_eq!(a.run.trace.records.len(), b.run.trace.records.len());
    for (x, y) in a.run.trace.records.iter().zip(&b.run.trace.records) {
        assert_eq!(x.selected, y.selected);
        assert_eq!(x.ln_alpha.to_bits(), y.ln_alpha.to_bits(), "ln_alpha bits");
        assert_eq!(x.ln_d1.to_bits(), y.ln_d1.to_bits(), "ln_d1 bits");
        assert_eq!(
            x.routed_value_before.to_bits(),
            y.routed_value_before.to_bits()
        );
    }
    assert_eq!(a.carry.len(), b.carry.len());
    for (x, y) in a.carry.iter().zip(&b.carry) {
        assert_eq!(x.to_bits(), y.to_bits(), "carry diverged");
    }
}

/// A context exercising masks, scaled residuals, and carried weights,
/// derived deterministically from the seed.
fn context_vectors(inst: &UfpInstance, seed: u64) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let caps: Vec<f64> = inst
        .graph()
        .edges()
        .iter()
        .map(|e| e.capacity * rng.random_range(0.5..=1.0))
        .collect();
    // Mask a minority of edges so paths still exist often.
    let usable: Vec<bool> = (0..caps.len())
        .map(|_| rng.random_range(0..5u32) != 0)
        .collect();
    let carry: Vec<f64> = (0..caps.len())
        .map(|_| rng.random_range(0.0..0.8))
        .collect();
    (caps, usable, carry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn one_shot_runs_bit_identical((inst, eps) in arb_instance()) {
        let fan = bounded_ufp_epoch(&inst, &with_strategy(eps, SelectionStrategy::FanOut), None);
        let inc = bounded_ufp_epoch(&inst, &with_strategy(eps, SelectionStrategy::Incremental), None);
        assert_outcomes_bit_identical(&fan, &inc);
        // Parallel pools change nothing either.
        let inc_par = bounded_ufp_epoch(
            &inst,
            &with_strategy(eps, SelectionStrategy::Incremental).parallel(Pool::new(4)),
            None,
        );
        assert_outcomes_bit_identical(&fan, &inc_par);
    }

    #[test]
    fn epoch_context_runs_bit_identical((inst, eps) in arb_instance(), seed in any::<u64>()) {
        let (caps, usable, carry) = context_vectors(&inst, seed);
        let ctx = EpochContext { capacities: &caps, usable: &usable, carry: &carry,
            routable: None,
        };
        let fan = bounded_ufp_epoch(&inst, &with_strategy(eps, SelectionStrategy::FanOut), Some(&ctx));
        let inc = bounded_ufp_epoch(&inst, &with_strategy(eps, SelectionStrategy::Incremental), Some(&ctx));
        assert_outcomes_bit_identical(&fan, &inc);
    }

    #[test]
    fn respect_residual_runs_bit_identical((inst, eps) in arb_instance()) {
        let mut fan_cfg = with_strategy(eps, SelectionStrategy::FanOut);
        fan_cfg.respect_residual = true;
        let mut inc_cfg = with_strategy(eps, SelectionStrategy::Incremental);
        inc_cfg.respect_residual = true;
        let fan = bounded_ufp_epoch(&inst, &fan_cfg, None);
        let inc = bounded_ufp_epoch(&inst, &inc_cfg, None);
        assert_outcomes_bit_identical(&fan, &inc);
    }

    #[test]
    fn traces_and_resumes_cross_strategies((inst, eps) in arb_instance(), seed in any::<u64>()) {
        // A trace recorded under one strategy must checkpoint and resume
        // bit-identically under the other — this is what lets PR 2's
        // resumed payments and PR 3's snapshots run unchanged on top.
        let fan_cfg = with_strategy(eps, SelectionStrategy::FanOut);
        let inc_cfg = with_strategy(eps, SelectionStrategy::Incremental);
        let (fan_full, fan_trace) = bounded_ufp_epoch_traced(&inst, &fan_cfg, None);
        let (inc_full, inc_trace) = bounded_ufp_epoch_traced(&inst, &inc_cfg, None);
        assert_outcomes_bit_identical(&fan_full, &inc_full);
        prop_assert_eq!(fan_trace.num_steps(), inc_trace.num_steps());
        if fan_trace.num_steps() > 0 {
            let prefix = (seed as usize) % (fan_trace.num_steps() + 1);
            // FanOut-recorded trace, resumed incrementally...
            let ckpt = fan_trace.checkpoint(&inst, &inc_cfg, None, prefix);
            let resumed = bounded_ufp_epoch_resume(&inst, &inc_cfg, None, ckpt);
            assert_outcomes_bit_identical(&fan_full, &resumed);
            // ...and the other way around.
            let ckpt = inc_trace.checkpoint(&inst, &fan_cfg, None, prefix);
            let resumed = bounded_ufp_epoch_resume(&inst, &fan_cfg, None, ckpt);
            assert_outcomes_bit_identical(&fan_full, &resumed);
        }
    }

    #[test]
    fn watch_probes_agree_across_strategies((inst, eps) in arb_instance()) {
        // The payment-probe primitive: lower a winner's declared value,
        // resume from its selection step watching for it. Membership
        // verdicts and checkpoint depths must match across strategies
        // (this covers the early-exit used by critical-value pricing).
        let fan_cfg = with_strategy(eps, SelectionStrategy::FanOut);
        let inc_cfg = with_strategy(eps, SelectionStrategy::Incremental);
        let (full, trace) = bounded_ufp_epoch_traced(&inst, &fan_cfg, None);
        for (rid, _) in full.run.solution.routed.iter().take(3) {
            let k = trace.selection_step(*rid).unwrap();
            let declared = inst.request(*rid).value;
            for factor in [0.85, 0.4, 0.05] {
                let probe =
                    inst.with_declared_type(*rid, inst.request(*rid).demand, declared * factor);
                let fan_watch = bounded_ufp_epoch_resume_watch(
                    &probe, &fan_cfg, None,
                    trace.checkpoint(&probe, &fan_cfg, None, k), *rid,
                );
                let inc_watch = bounded_ufp_epoch_resume_watch(
                    &probe, &inc_cfg, None,
                    trace.checkpoint(&probe, &inc_cfg, None, k), *rid,
                );
                prop_assert_eq!(fan_watch.is_some(), inc_watch.is_some(),
                    "watch membership diverged for {:?} at {}x", rid, factor);
                if let (Some(a), Some(b)) = (&fan_watch, &inc_watch) {
                    prop_assert_eq!(a.steps(), b.steps(),
                        "watch checkpoint depth diverged for {:?} at {}x", rid, factor);
                }
            }
        }
    }
}

/// Weight re-centering rescales every materialized Dijkstra weight,
/// which invalidates the incremental cache's distance *scale*. Force
/// hundreds of recenters in one run and require bit-identity throughout.
#[test]
fn recentering_flush_preserves_bit_identity() {
    // One wide edge, capacity 2000: each selection bumps the edge by
    // ε·B·d/c = 1, so the run crosses the RECENTER_AT = 600 threshold
    // repeatedly while admitting many hundreds of requests.
    let mut gb = GraphBuilder::directed(2);
    gb.add_edge(NodeId(0), NodeId(1), 2000.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..700)
            .map(|i| Request::new(NodeId(0), NodeId(1), 1.0, 1.0 + (i % 13) as f64))
            .collect(),
    );
    let fan = bounded_ufp_epoch(&inst, &with_strategy(1.0, SelectionStrategy::FanOut), None);
    let inc = bounded_ufp_epoch(
        &inst,
        &with_strategy(1.0, SelectionStrategy::Incremental),
        None,
    );
    assert!(
        fan.run.solution.routed.len() > 600,
        "fixture must cross the recenter threshold (routed {})",
        fan.run.solution.routed.len()
    );
    assert_outcomes_bit_identical(&fan, &inc);
}

/// A bottleneck shared by every request: each winner dirties *all*
/// remaining requests, driving the selector through its eager grouped
/// fan-out refresh (the large-dirty-set path) on every iteration.
#[test]
fn dirty_storm_takes_the_eager_path_bit_identically() {
    let mut gb = GraphBuilder::directed(3);
    gb.add_edge(NodeId(0), NodeId(1), 120.0);
    gb.add_edge(NodeId(1), NodeId(2), 120.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..150)
            .map(|i| {
                Request::new(
                    NodeId(0),
                    NodeId(2),
                    0.5 + 0.05 * (i % 10) as f64,
                    0.7 + ((i * 11) % 17) as f64,
                )
            })
            .collect(),
    );
    for eps in [0.3, 0.8] {
        let fan = bounded_ufp_epoch(&inst, &with_strategy(eps, SelectionStrategy::FanOut), None);
        let inc = bounded_ufp_epoch(
            &inst,
            &with_strategy(eps, SelectionStrategy::Incremental),
            None,
        );
        assert!(!fan.run.solution.routed.is_empty());
        assert_outcomes_bit_identical(&fan, &inc);
        // Parallel eager refresh changes nothing.
        let inc_par = bounded_ufp_epoch(
            &inst,
            &with_strategy(eps, SelectionStrategy::Incremental).parallel(Pool::new(4)),
            None,
        );
        assert_outcomes_bit_identical(&fan, &inc_par);
    }
}

/// Residual-gated search with a dirty storm: the per-request edge filter
/// (demand vs residual) flows through the eager refresh too.
#[test]
fn residual_gate_dirty_storm_bit_identical() {
    let mut gb = GraphBuilder::directed(4);
    gb.add_edge(NodeId(0), NodeId(1), 40.0);
    gb.add_edge(NodeId(1), NodeId(3), 40.0);
    gb.add_edge(NodeId(0), NodeId(2), 45.0);
    gb.add_edge(NodeId(2), NodeId(3), 45.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..120)
            .map(|i| {
                Request::new(
                    NodeId(0),
                    NodeId(3),
                    0.3 + 0.07 * (i % 10) as f64,
                    0.5 + ((i * 7) % 19) as f64,
                )
            })
            .collect(),
    );
    let mut fan_cfg = with_strategy(0.6, SelectionStrategy::FanOut);
    fan_cfg.respect_residual = true;
    let mut inc_cfg = with_strategy(0.6, SelectionStrategy::Incremental);
    inc_cfg.respect_residual = true;
    let fan = bounded_ufp_epoch(&inst, &fan_cfg, None);
    let inc = bounded_ufp_epoch(&inst, &inc_cfg, None);
    assert!(!fan.run.solution.routed.is_empty());
    assert_outcomes_bit_identical(&fan, &inc);
}

/// `bounded_ufp` (the public one-shot entry) defaults to Incremental;
/// explicit FanOut must agree on the classic fixtures.
#[test]
fn default_strategy_is_incremental_and_equivalent() {
    assert_eq!(
        BoundedUfpConfig::default().selection,
        SelectionStrategy::Incremental
    );
    let mut gb = GraphBuilder::directed(4);
    gb.add_edge(NodeId(0), NodeId(1), 20.0);
    gb.add_edge(NodeId(1), NodeId(3), 20.0);
    gb.add_edge(NodeId(0), NodeId(2), 20.0);
    gb.add_edge(NodeId(2), NodeId(3), 20.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..30)
            .map(|i| Request::new(NodeId(0), NodeId(3), 1.0, 1.0 + (i % 5) as f64))
            .collect(),
    );
    let default_run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
    let fan_run = bounded_ufp(
        &inst,
        &BoundedUfpConfig::with_epsilon(0.5).with_selection(SelectionStrategy::FanOut),
    );
    assert_eq!(
        default_run.solution.routed.len(),
        fan_run.solution.routed.len()
    );
    for (a, b) in default_run
        .solution
        .routed
        .iter()
        .zip(&fan_run.solution.routed)
    {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.nodes(), b.1.nodes());
    }
}
