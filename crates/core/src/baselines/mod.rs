//! Comparator algorithms for the benchmark suite (experiment E7/E12):
//!
//! * [`bkv()`] — reconstruction of the previous best truthful algorithm
//!   (Briest–Krysta–Vöcking, ratio → e);
//! * [`greedy()`] — value- and density-ordered greedy;
//! * [`rounding`] — randomized rounding with alteration, the near-optimal
//!   but non-monotone technique the paper's introduction rules out.

pub mod bkv;
pub mod greedy;
pub mod rounding;

pub use bkv::{bkv, BkvConfig, BkvResult};
pub use greedy::{greedy, GreedyOrder};
pub use rounding::{randomized_rounding, RoundingConfig};
