//! Randomized rounding (Raghavan–Thompson \[17\]) on the fractional
//! relaxation — the near-optimal but **non-monotone** baseline.
//!
//! For `B = Ω(ln m / ε²)` the integrality gap is `1 + ε`, and rounding the
//! fractional solution matches it; this is exactly the technique the paper
//! says "violates certain monotonicity properties, which are imperative
//! for truthfulness, and therefore cannot be employed". Experiment E12
//! uses this implementation both for the quality comparison and to search
//! for a concrete monotonicity violation witness (a fixed coin sequence
//! under which raising one's bid flips the agent from selected to
//! rejected).
//!
//! Pipeline: solve the fractional relaxation (Garg–Könemann with a
//! Dijkstra oracle), scale by `1 − ε`, sample each request independently
//! (path chosen proportionally to its fractional split), then run a
//! greedy *alteration* pass dropping sampled requests that no longer fit
//! — guaranteeing feasibility on every coin sequence, as in the standard
//! "rounding with alterations" recipe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_lp::mcf::solve_fractional_ufp;

use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::solution::UfpSolution;

/// Configuration for [`randomized_rounding`].
#[derive(Clone, Copy, Debug)]
pub struct RoundingConfig {
    /// Scaling ε: selection probabilities are `(1−ε)·x_r`.
    pub epsilon: f64,
    /// LP accuracy for the fractional solve.
    pub lp_epsilon: f64,
    /// Iteration cap for the fractional solve.
    pub lp_max_iterations: usize,
    /// RNG seed — fixing it makes the "random" algorithm a deterministic
    /// function of the declarations, which is how the non-monotonicity
    /// witness is exhibited.
    pub seed: u64,
}

impl Default for RoundingConfig {
    fn default() -> Self {
        RoundingConfig {
            epsilon: 0.1,
            lp_epsilon: 0.05,
            lp_max_iterations: 200_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Run randomized rounding with alteration. Always returns a feasible
/// (duplicate-free) solution.
pub fn randomized_rounding(instance: &UfpInstance, config: &RoundingConfig) -> UfpSolution {
    let graph = instance.graph();
    let commodities = instance.to_commodities();
    let frac = solve_fractional_ufp(
        graph,
        &commodities,
        config.lp_epsilon,
        config.lp_max_iterations,
    );

    // Group fractional path flows per request.
    let mut per_request: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_requests()];
    for (i, f) in frac.flows.iter().enumerate() {
        per_request[f.commodity].push((i, f.amount));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sampled: Vec<(RequestId, usize)> = Vec::new();
    for (r, flows) in per_request.iter().enumerate() {
        let x_r: f64 = flows.iter().map(|(_, a)| a).sum();
        if x_r <= 0.0 {
            continue;
        }
        let p = ((1.0 - config.epsilon) * x_r).clamp(0.0, 1.0);
        if rng.random_range(0.0..1.0) >= p {
            continue;
        }
        // Choose the path proportionally to the fractional split.
        let mut pick = rng.random_range(0.0..x_r);
        let mut chosen = flows[0].0;
        for &(idx, amt) in flows {
            if pick < amt {
                chosen = idx;
                break;
            }
            pick -= amt;
        }
        sampled.push((RequestId(r as u32), chosen));
    }

    // Alteration pass: keep sampled requests greedily (by value density,
    // deterministically) while capacity admits them.
    sampled.sort_by(|a, b| {
        let (ra, rb) = (instance.request(a.0), instance.request(b.0));
        (rb.value / rb.demand)
            .partial_cmp(&(ra.value / ra.demand))
            .unwrap()
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut residual: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    let mut solution = UfpSolution::empty();
    for (rid, flow_idx) in sampled {
        let d = instance.request(rid).demand;
        let path = &frac.flows[flow_idx].path;
        if path
            .edges()
            .iter()
            .all(|e| residual[e.index()] >= d - 1e-12)
        {
            for &e in path.edges() {
                residual[e.index()] -= d;
            }
            solution.routed.push((rid, path.clone()));
        }
    }
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn wide_instance(requests: usize, cap: f64) -> UfpInstance {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), cap);
        UfpInstance::new(
            gb.build(),
            (0..requests)
                .map(|i| Request::new(n(0), n(1), 1.0, 1.0 + (i % 3) as f64))
                .collect(),
        )
    }

    #[test]
    fn always_feasible() {
        let inst = wide_instance(40, 12.0);
        for seed in 0..10 {
            let cfg = RoundingConfig {
                seed,
                ..Default::default()
            };
            let sol = randomized_rounding(&inst, &cfg);
            assert!(
                sol.check_feasible(&inst, false).is_ok(),
                "seed {seed} produced infeasible output"
            );
        }
    }

    #[test]
    fn gets_close_to_capacity_on_abundant_demand() {
        let inst = wide_instance(60, 20.0);
        let sol = randomized_rounding(&inst, &RoundingConfig::default());
        // With epsilon 0.1 and x summing to 20, expect ~18 selections;
        // alteration can only trim. Loose check: at least half capacity.
        assert!(
            sol.len() >= 10,
            "rounded solution too small: {} requests",
            sol.len()
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = wide_instance(25, 8.0);
        let cfg = RoundingConfig {
            seed: 42,
            ..Default::default()
        };
        let a = randomized_rounding(&inst, &cfg);
        let b = randomized_rounding(&inst, &cfg);
        assert_eq!(a.routed.len(), b.routed.len());
        for (x, y) in a.routed.iter().zip(&b.routed) {
            assert_eq!(x.0, y.0);
        }
    }

    #[test]
    fn empty_instance() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 5.0);
        let inst = UfpInstance::new(gb.build(), vec![]);
        let sol = randomized_rounding(&inst, &RoundingConfig::default());
        assert!(sol.is_empty());
    }
}
