//! Greedy baselines: sort once, route on the hop-shortest residual path.
//!
//! These are the classic non-primal-dual comparators for experiment E7.
//! Neither carries an approximation guarantee in the large-capacity
//! regime; they calibrate how much the paper's machinery buys.

use ufp_netgraph::dijkstra::Dijkstra;

use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::solution::UfpSolution;

/// Greedy ordering rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GreedyOrder {
    /// Descending value `v_r`.
    ByValue,
    /// Descending value density `v_r / d_r`.
    ByDensity,
}

/// One-pass greedy: process requests in the chosen order, routing each on
/// its hop-shortest residual-feasible path if one exists.
pub fn greedy(instance: &UfpInstance, order: GreedyOrder) -> UfpSolution {
    let graph = instance.graph();
    let mut ids: Vec<RequestId> = instance.request_ids().collect();
    // Deterministic: sort by the key, ties by request id.
    match order {
        GreedyOrder::ByValue => ids.sort_by(|a, b| {
            let (ra, rb) = (instance.request(*a), instance.request(*b));
            rb.value
                .partial_cmp(&ra.value)
                .unwrap()
                .then_with(|| a.cmp(b))
        }),
        GreedyOrder::ByDensity => ids.sort_by(|a, b| {
            let (ra, rb) = (instance.request(*a), instance.request(*b));
            (rb.value / rb.demand)
                .partial_cmp(&(ra.value / ra.demand))
                .unwrap()
                .then_with(|| a.cmp(b))
        }),
    }

    let unit = vec![1.0f64; graph.num_edges()];
    let mut residual: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    let mut dij = Dijkstra::new(graph.num_nodes());
    let mut solution = UfpSolution::empty();
    for rid in ids {
        let req = instance.request(rid);
        let found = dij.shortest_path(graph, &unit, req.src, req.dst, |e| {
            residual[e.index()] >= req.demand - 1e-12
        });
        if let Some(res) = found {
            for &e in res.path.edges() {
                residual[e.index()] -= req.demand;
            }
            solution.routed.push((rid, res.path));
        }
    }
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn by_value_takes_the_big_request() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 1.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 7.0),
            ],
        );
        let sol = greedy(&inst, GreedyOrder::ByValue);
        assert_eq!(sol.len(), 1);
        assert!(sol.contains(RequestId(1)));
        assert!(sol.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn by_density_prefers_small_demands() {
        // value 2 / demand 0.2 (density 10) vs value 3 / demand 1 (density 3)
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 1.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 3.0),
                Request::new(n(0), n(1), 0.2, 2.0),
            ],
        );
        let sol = greedy(&inst, GreedyOrder::ByDensity);
        assert!(sol.contains(RequestId(1)));
        // after routing the small one, residual 0.8 < 1: big one rejected
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn reroutes_around_saturation() {
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 1.0);
        gb.add_edge(n(1), n(3), 1.0);
        gb.add_edge(n(0), n(2), 1.0);
        gb.add_edge(n(2), n(3), 1.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(3), 1.0, 2.0),
                Request::new(n(0), n(3), 1.0, 1.0),
            ],
        );
        let sol = greedy(&inst, GreedyOrder::ByValue);
        assert_eq!(sol.len(), 2);
        assert!(sol.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn ties_broken_by_request_id() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 1.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 5.0),
                Request::new(n(0), n(1), 1.0, 5.0),
            ],
        );
        let sol = greedy(&inst, GreedyOrder::ByValue);
        assert!(sol.contains(RequestId(0)));
    }
}
