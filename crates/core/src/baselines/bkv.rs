//! Reconstruction of the Briest–Krysta–Vöcking primal–dual baseline \[7\].
//!
//! The paper improves on the truthful mechanism of Briest et al.
//! (STOC'05), whose UFP algorithm attains a ratio approaching `e`. The
//! STOC version does not reproduce pseudocode for the flow variant, so —
//! as documented in DESIGN.md §5 — we reconstruct it from its analysis
//! sketch: the *same* exponential edge pricing as Algorithm 1, but a
//! **single pass** over the requests in fixed declaration order, accepting
//! a request exactly when its current normalized shortest-path length
//! clears the dual threshold (`v_r ≥ d_r·|p_r|_y`, i.e. its dual
//! constraint is violated at the current prices).
//!
//! Monotonicity: earlier requests never observe `r`'s declaration
//! (one-pass), and at `r`'s turn the acceptance test is monotone in
//! `(d_r ↓, v_r ↑)`; hence selected stays selected — the property that
//! made the BKV mechanism truthful. What the one-pass structure gives up
//! is the global "most violated constraint first" selection, which is
//! precisely where the `e` vs `e/(e−1)` gap opens (experiment E7).

use ufp_netgraph::dijkstra::Dijkstra;

use crate::instance::UfpInstance;
use crate::solution::UfpSolution;
use crate::trace::StopReason;
use crate::weights::DualWeights;

/// Configuration for [`bkv`].
#[derive(Clone, Copy, Debug)]
pub struct BkvConfig {
    /// Accuracy parameter ε ∈ (0, 1], same role as in Algorithm 1.
    pub epsilon: f64,
}

impl Default for BkvConfig {
    fn default() -> Self {
        BkvConfig { epsilon: 0.1 }
    }
}

/// Result of a BKV run.
#[derive(Clone, Debug)]
pub struct BkvResult {
    /// Accepted requests with their paths.
    pub solution: UfpSolution,
    /// Why the pass ended ([`StopReason::Exhausted`] = full pass,
    /// [`StopReason::Guard`] = dual guard tripped mid-pass).
    pub stop_reason: StopReason,
}

/// Run the one-pass threshold primal–dual on a normalized instance.
pub fn bkv(instance: &UfpInstance, config: &BkvConfig) -> BkvResult {
    assert!(
        instance.is_normalized(),
        "BKV requires a normalized instance"
    );
    assert!(
        config.epsilon > 0.0 && config.epsilon <= 1.0,
        "epsilon must lie in (0, 1]"
    );
    let graph = instance.graph();
    let eps = config.epsilon;
    let b = graph.min_capacity();
    let ln_guard = eps * (b - 1.0);

    let mut weights = DualWeights::new(graph);
    let mut dij = Dijkstra::new(graph.num_nodes());
    let mut solution = UfpSolution::empty();
    let mut stop_reason = StopReason::Exhausted;

    for rid in instance.request_ids() {
        if weights.ln_dual_sum() > ln_guard {
            stop_reason = StopReason::Guard;
            break;
        }
        let req = instance.request(rid);
        let Some(found) = dij.shortest_path(graph, weights.weights(), req.src, req.dst, |_| true)
        else {
            continue;
        };
        // Accept iff (d/v)·|p|_y ≤ 1 in the true weight scale:
        // ln(d/v · dist_materialized) + shift ≤ 0.
        let score = req.density() * found.distance;
        let accept = if score <= 0.0 {
            true // zero-length path: constraint violated at any value
        } else {
            score.ln() + weights.shift() <= 0.0
        };
        if !accept {
            continue;
        }
        for &e in found.path.edges() {
            let c = weights.capacity(e);
            weights.bump(e, eps * b * req.demand / c);
        }
        solution.routed.push((rid, found.path));
    }

    BkvResult {
        solution,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_ufp::{bounded_ufp, BoundedUfpConfig};
    use crate::request::{Request, RequestId};
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn accepts_cheap_requests_and_stays_feasible() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..40)
                .map(|_| Request::new(n(0), n(1), 1.0, 1.0))
                .collect(),
        );
        let res = bkv(&inst, &BkvConfig { epsilon: 0.3 });
        assert!(res.solution.check_feasible(&inst, false).is_ok());
        assert!(!res.solution.is_empty());
        assert!(res.solution.len() <= 10);
    }

    #[test]
    fn rejects_low_value_requests_at_high_prices() {
        // Tiny value: v = 1e-6 with d=1 on a 2-capacity edge.
        // Initial |p|_y = 1/2, so the test v >= d·|p| fails.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 2.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 1e-6)]);
        let res = bkv(&inst, &BkvConfig { epsilon: 0.5 });
        assert!(res.solution.is_empty());
    }

    #[test]
    fn one_pass_order_dependence() {
        // Capacity for one request; the first-processed acceptable
        // request wins even if a later one is more valuable — the
        // weakness Bounded-UFP fixes.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 2.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 100.0),
            ],
        );
        let res = bkv(&inst, &BkvConfig { epsilon: 1.0 });
        // first request accepted first (one-pass)
        assert!(res.solution.contains(RequestId(0)));
        let agg = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(1.0));
        // Bounded-UFP routes the valuable one first instead.
        assert_eq!(agg.solution.routed[0].0, RequestId(1));
    }

    #[test]
    fn monotone_in_value_at_own_slot() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 5.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..10)
                .map(|i| Request::new(n(0), n(1), 1.0, 0.5 + 0.2 * i as f64))
                .collect(),
        );
        let cfg = BkvConfig { epsilon: 0.4 };
        let base = bkv(&inst, &cfg);
        for rid in instance_ids(&inst) {
            if !base.solution.contains(rid) {
                continue;
            }
            let probe = inst.with_declared_type(rid, inst.request(rid).demand, 1e6);
            let res = bkv(&probe, &cfg);
            assert!(
                res.solution.contains(rid),
                "raising {rid}'s value dropped it"
            );
        }
    }

    fn instance_ids(inst: &UfpInstance) -> Vec<RequestId> {
        inst.request_ids().collect()
    }
}
