//! Connection requests and their identifiers.

use std::fmt;

use ufp_netgraph::ids::NodeId;

/// Identifier of a request: index into [`crate::instance::UfpInstance`]'s
/// request list. Doubles as the deterministic tie-break key everywhere a
/// minimum is taken over requests.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The index as a `usize`, for `Vec` indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A connection request `(s_r, t_r, d_r, v_r)`.
///
/// The paper's *type* of a request — what a selfish agent may lie about —
/// is the `(demand, value)` pair; the endpoints are public knowledge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Source vertex `s_r`.
    pub src: NodeId,
    /// Target vertex `t_r`.
    pub dst: NodeId,
    /// Demand `d_r ∈ (0, 1]` after normalization.
    pub demand: f64,
    /// Value (profit) `v_r > 0` gained by routing the request.
    pub value: f64,
}

impl Request {
    /// Construct a request, validating positivity. Endpoint range checks
    /// happen at instance construction (they need the graph).
    pub fn new(src: NodeId, dst: NodeId, demand: f64, value: f64) -> Self {
        assert!(
            demand.is_finite() && demand > 0.0,
            "demand must be positive and finite, got {demand}"
        );
        assert!(
            value.is_finite() && value > 0.0,
            "value must be positive and finite, got {value}"
        );
        assert_ne!(src, dst, "requests must connect distinct vertices");
        Request {
            src,
            dst,
            demand,
            value,
        }
    }

    /// Demand-to-value ratio `d_r / v_r` — the request-dependent factor of
    /// the paper's selection rule `min_r (d_r / v_r)·|p_r|`.
    #[inline]
    pub fn density(&self) -> f64 {
        self.demand / self.value
    }

    /// The same request with a different declared type (used by the
    /// mechanism layer to evaluate misreports).
    pub fn with_type(&self, demand: f64, value: f64) -> Self {
        Request::new(self.src, self.dst, demand, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_density() {
        let r = Request::new(NodeId(0), NodeId(1), 0.5, 2.0);
        assert_eq!(r.density(), 0.25);
    }

    #[test]
    fn with_type_keeps_endpoints() {
        let r = Request::new(NodeId(3), NodeId(7), 1.0, 1.0);
        let r2 = r.with_type(0.5, 4.0);
        assert_eq!(r2.src, NodeId(3));
        assert_eq!(r2.dst, NodeId(7));
        assert_eq!(r2.demand, 0.5);
        assert_eq!(r2.value, 4.0);
    }

    #[test]
    #[should_panic]
    fn zero_demand_rejected() {
        Request::new(NodeId(0), NodeId(1), 0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_value_rejected() {
        Request::new(NodeId(0), NodeId(1), 1.0, -2.0);
    }

    #[test]
    #[should_panic]
    fn loop_request_rejected() {
        Request::new(NodeId(4), NodeId(4), 1.0, 1.0);
    }

    #[test]
    fn request_id_ordering() {
        assert!(RequestId(2) < RequestId(10));
        assert_eq!(format!("{}", RequestId(3)), "r3");
    }
}
