//! Incremental argmin selection for Algorithm 1's main loop.
//!
//! The paper's pseudocode re-solves one shortest-path query per
//! still-unrouted request on *every* iteration, yet each iteration only
//! bumps dual weights (and decrements residuals) along the single
//! winner's path. Within an epoch the dynamics are **monotone**: edge
//! weights never decrease, residual capacities never increase, the
//! `usable` mask never changes. Two consequences carry the whole module:
//!
//! 1. **Cached answers stay exact until touched.** If none of the edges
//!    on request `r`'s cached shortest path changed, a fresh Dijkstra
//!    would return the *bit-identical* distance and path: the cached
//!    path's edge weights are unchanged, every alternative path only got
//!    heavier (or vanished), and Dijkstra's `(distance, node-id)` pop
//!    order together with its first-strict-improvement parent rule means
//!    the set of nodes settling before any cached-path node can only
//!    shrink — so the same parents are assigned by the same float
//!    arithmetic. (See `crates/core/README.md` for the full argument.)
//! 2. **Stale scores are lower bounds.** A request's score
//!    `density(r) · dist(r)` can only grow over time, so a score
//!    computed at an earlier iteration under-estimates the current one.
//!    A min-heap over possibly-stale scores therefore supports *lazy*
//!    argmin: pop the minimum; if its entry is stale, refresh and
//!    re-insert (the key only rises); the first fresh minimum popped is
//!    the true argmin, with the heap's `(score, request-id)` order
//!    reproducing the deterministic tie-break of the full fan-out.
//!
//! [`IncrementalSelector`] combines a [`PathCache`] (cached paths +
//! edge→request interest index, so a winner's weight bumps dirty exactly
//! the requests whose cached paths cross the bumped edges), an
//! [`IndexedMinHeap`] over scores, and two refresh paths: lazy
//! single-request re-queries for small dirty sets, and the `ufp_par`
//! grouped fan-out for large ones (hotspot edges can dirty hundreds of
//! same-source requests at once, which one shared Dijkstra answers).
//! The one event that invalidates everything is a [`DualWeights`]
//! re-centering: it rescales every materialized weight, so cached
//! distances change *scale* and stale keys stop being lower bounds —
//! the selector detects the shift change and refreshes every live
//! request before the next selection.
//!
//! The output contract is strict: selections, scores, paths, iteration
//! records, resume traces, and stop reasons are **bit-identical** to the
//! full per-iteration fan-out ([`SelectionStrategy::FanOut`]), proptested
//! in `tests/selection_equivalence.rs`.

use ufp_netgraph::dijkstra::{Dijkstra, Targets};
use ufp_netgraph::heap::IndexedMinHeap;
use ufp_netgraph::ids::{EdgeId, NodeId};
use ufp_netgraph::path::Path;
use ufp_netgraph::pathcache::PathCache;
use ufp_obs::{Phase, Recorder};
use ufp_par::Pool;

use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::weights::DualWeights;

/// How the main loop finds each iteration's argmin request.
///
/// Both strategies produce **bit-identical** runs — same selections,
/// same paths, same [`crate::IterationRecord`]s, same resume traces and
/// payments — so the choice is purely a performance knob, and snapshots
/// taken under one restore under the other (the engine keeps them in one
/// config-fingerprint class, like `CriticalValue` /
/// `CriticalValueNaive`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Dirty-set shortest-path cache + lazy score heap: per iteration,
    /// only requests whose cached paths cross the previous winner's
    /// edges are re-queried. The default — `O(iters · dirtied)` queries
    /// instead of `O(iters · remaining)`.
    #[default]
    Incremental,
    /// The paper-literal full fan-out: every remaining request re-queried
    /// every iteration. Kept as the reference for equivalence tests and
    /// speedup benchmarks (`BENCH_PR4.json`).
    FanOut,
}

/// Dirty sets at or above this size are refreshed eagerly through the
/// grouped `ufp_par` fan-out instead of lazily one-at-a-time at the heap
/// top. Pure cost model: grouped refresh shares one Dijkstra among
/// same-source requests and can use the worker pool; lazy refresh skips
/// requests that never become competitive. Results are identical either
/// way.
const EAGER_REFRESH_MIN: usize = 64;

/// Below this many source groups, the grouped refresh stays on the
/// calling thread (`Pool::map_with_floor`) — dispatch latency would
/// exceed the Dijkstra work.
const PARALLEL_GROUP_FLOOR: usize = 4;

/// The per-epoch incremental selection state. One instance lives for one
/// `run_epoch_loop` call; it is derived state (rebuildable from the loop
/// state at any point), which is what keeps checkpoints, resume traces,
/// and snapshots entirely unaware of it.
pub(crate) struct IncrementalSelector {
    cache: PathCache,
    /// Lazy min-heap over `(score, request-id)`.
    heap: IndexedMinHeap,
    /// Still in play: not selected, not proven unreachable.
    alive: Vec<bool>,
    dirty: Vec<bool>,
    /// Slots flagged dirty since the last eager refresh (entries whose
    /// flag was cleared by a lazy refresh are skipped when drained).
    dirty_list: Vec<u32>,
    dirty_count: usize,
    /// Weight scale the cached distances were computed under; a shift
    /// change (re-centering) forces a full refresh.
    shift_seen: f64,
    /// `true` until the first [`IncrementalSelector::select`] builds the
    /// cache from the loop's current remaining set.
    unseeded: bool,
    /// Forces the next refresh to be eager and complete (set by scale
    /// flushes, where stale keys are not lower bounds).
    must_refresh_all: bool,
    scratch: Dijkstra,
    drain_buf: Vec<u32>,
}

/// One refreshed cache answer: the request's slot and, when it still
/// has a path, the new `(distance, path)` pair.
type Refreshed = (u32, Option<(f64, Path)>);

/// Everything `select` needs from the surrounding loop, bundled so the
/// borrow of the loop state stays in one place.
pub(crate) struct SelectInputs<'a> {
    pub instance: &'a UfpInstance,
    pub weights: &'a DualWeights,
    /// Residual capacities (consulted only when `respect_residual`).
    pub residual: &'a [f64],
    pub usable: Option<&'a [bool]>,
    pub respect_residual: bool,
    pub pool: &'a Pool,
    /// Observability handle (off by default; never affects selection).
    pub obs: &'a Recorder,
}

impl SelectInputs<'_> {
    /// The edge filter for request-independent queries.
    #[inline]
    fn passable(&self, e: EdgeId) -> bool {
        self.usable.is_none_or(|u| u[e.index()])
    }

    /// The edge filter for `r`'s queries (residual-gated when enabled).
    #[inline]
    fn passable_for(&self, e: EdgeId, demand: f64) -> bool {
        self.passable(e) && (!self.respect_residual || self.residual[e.index()] >= demand - 1e-12)
    }
}

impl IncrementalSelector {
    pub(crate) fn new(instance: &UfpInstance) -> Self {
        let n = instance.num_requests();
        let graph = instance.graph();
        IncrementalSelector {
            cache: PathCache::new(n, graph.num_edges()),
            heap: IndexedMinHeap::new(n),
            alive: vec![false; n],
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            dirty_count: 0,
            shift_seen: 0.0,
            unseeded: true,
            must_refresh_all: false,
            scratch: Dijkstra::new(graph.num_nodes()),
            drain_buf: Vec::new(),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, slot: u32) {
        let s = slot as usize;
        if self.alive[s] && !self.dirty[s] {
            self.dirty[s] = true;
            self.dirty_list.push(slot);
            self.dirty_count += 1;
        }
    }

    /// The argmin `(request, score)` under the current weights —
    /// bit-identical (selection, score, tie-break) to scanning a full
    /// fan-out's findings. `None` when no live request has a path
    /// (the fan-out's `NoPath` condition).
    pub(crate) fn select(
        &mut self,
        remaining: &[RequestId],
        inputs: &SelectInputs<'_>,
    ) -> Option<(RequestId, f64)> {
        if self.unseeded {
            self.unseeded = false;
            self.shift_seen = inputs.weights.shift();
            for &r in remaining {
                self.alive[r.index()] = true;
                self.mark_dirty(r.0);
            }
            self.must_refresh_all = true;
        }
        if self.dirty_count > 0 && (self.must_refresh_all || self.dirty_count >= EAGER_REFRESH_MIN)
        {
            self.refresh_eager(inputs);
            self.must_refresh_all = false;
        }
        // `selection.heap` covers the lazy pop loop (peeks, staleness
        // checks, re-inserts); the per-request re-queries it triggers
        // nest inside it as `selection.dijkstra` spans.
        let _heap = inputs.obs.span(Phase::SelectionHeap);
        loop {
            let (slot, key) = self.heap.peek()?;
            if self.dirty[slot as usize] {
                self.refresh_one(slot, inputs);
                continue;
            }
            return Some((RequestId(slot), key));
        }
    }

    /// The cached path of the just-selected winner. Valid immediately
    /// after [`IncrementalSelector::select`] returned that request.
    pub(crate) fn winner_path(&self, r: RequestId) -> &Path {
        self.cache
            .get(r.0)
            .expect("winner must have a cached path")
            .1
    }

    /// Account for an applied step: retire the winner, dirty the
    /// requests whose cached paths cross its path's edges (their weights
    /// were bumped and their residuals decremented), and detect weight
    /// re-centering (which invalidates every cached distance's scale).
    pub(crate) fn after_step(&mut self, selected: RequestId, path: &Path, weights: &DualWeights) {
        let s = selected.index();
        self.alive[s] = false;
        if self.dirty[s] {
            self.dirty[s] = false;
            self.dirty_count -= 1;
        }
        self.heap.remove(selected.0);
        self.cache.evict(selected.0);

        if weights.shift() != self.shift_seen {
            // Re-centering rescaled every materialized weight: cached
            // distances are in the wrong scale and stale keys are no
            // longer lower bounds. Refresh everything before the next
            // selection.
            self.shift_seen = weights.shift();
            self.must_refresh_all = true;
            for slot in 0..self.alive.len() as u32 {
                self.mark_dirty(slot);
            }
            return;
        }
        let mut buf = std::mem::take(&mut self.drain_buf);
        for &e in path.edges() {
            buf.clear();
            self.cache.drain_interested(e, &mut buf);
            for &slot in &buf {
                self.mark_dirty(slot);
            }
        }
        self.drain_buf = buf;
    }

    /// Re-query one request at the heap top (the lazy path). Clears its
    /// dirty flag; evicts it permanently if it no longer has a path
    /// (monotonicity: paths never come back within an epoch).
    fn refresh_one(&mut self, slot: u32, inputs: &SelectInputs<'_>) {
        let _span = inputs.obs.span(Phase::SelectionDijkstra);
        let s = slot as usize;
        debug_assert!(self.alive[s] && self.dirty[s]);
        self.dirty[s] = false;
        self.dirty_count -= 1;
        let req = inputs.instance.request(RequestId(slot));
        let graph = inputs.instance.graph();
        self.scratch.run(
            graph,
            inputs.weights.weights(),
            req.src,
            Targets::One(req.dst),
            |e| inputs.passable_for(e, req.demand),
        );
        match self.scratch.distance(req.dst) {
            None => {
                self.alive[s] = false;
                self.heap.remove(slot);
                self.cache.evict(slot);
            }
            Some(dist) => {
                let filled = self
                    .scratch
                    .path_to_into(req.dst, self.cache.refresh_buffer(slot));
                debug_assert!(filled, "settled target must reconstruct");
                self.cache.commit(slot, dist);
                self.heap.update(slot, req.density() * dist);
            }
        }
    }

    /// Refresh every dirty request through the grouped fan-out (the
    /// large-dirty-set / post-flush path). Same queries as
    /// [`IncrementalSelector::refresh_one`], batched: same-source
    /// requests share one Dijkstra (unless residual-gated, where the
    /// filter is per-request) and groups fan out over the worker pool.
    fn refresh_eager(&mut self, inputs: &SelectInputs<'_>) {
        let _span = inputs.obs.span(Phase::SelectionDirtyRefresh);
        let mut rids: Vec<RequestId> = Vec::with_capacity(self.dirty_count);
        for slot in self.dirty_list.drain(..) {
            if self.dirty[slot as usize] {
                self.dirty[slot as usize] = false;
                rids.push(RequestId(slot));
            }
        }
        self.dirty_count = 0;
        if rids.is_empty() {
            return;
        }
        let instance = inputs.instance;
        let graph = instance.graph();
        let w = inputs.weights.weights();

        let refreshed: Vec<Refreshed> = if inputs.respect_residual {
            // Per-request edge filter: no Dijkstra sharing possible.
            rids.sort_unstable();
            inputs.pool.map_with_floor(
                &rids,
                EAGER_REFRESH_MIN,
                || (Dijkstra::new(graph.num_nodes()), Path::trivial(NodeId(0))),
                |(dij, pbuf), _, &r| {
                    let req = instance.request(r);
                    dij.run(graph, w, req.src, Targets::One(req.dst), |e| {
                        inputs.passable_for(e, req.demand)
                    });
                    let found = dij.distance(req.dst).map(|dist| {
                        dij.path_to_into(req.dst, pbuf);
                        (dist, pbuf.clone())
                    });
                    (r.0, found)
                },
            )
        } else {
            let groups = crate::bounded_ufp::group_by_source(instance, &rids);
            let per_group: Vec<Vec<Refreshed>> = inputs.pool.map_with_floor(
                &groups,
                PARALLEL_GROUP_FLOOR,
                || (Dijkstra::new(graph.num_nodes()), Path::trivial(NodeId(0))),
                |(dij, pbuf), _, (src, members)| {
                    let targets: Vec<_> =
                        members.iter().map(|r| instance.request(*r).dst).collect();
                    dij.run(graph, w, *src, Targets::Set(&targets), |e| {
                        inputs.passable(e)
                    });
                    members
                        .iter()
                        .map(|&r| {
                            let dst = instance.request(r).dst;
                            let found = dij.distance(dst).map(|dist| {
                                dij.path_to_into(dst, pbuf);
                                (dist, pbuf.clone())
                            });
                            (r.0, found)
                        })
                        .collect()
                },
            );
            per_group.into_iter().flatten().collect()
        };

        for (slot, found) in refreshed {
            match found {
                None => {
                    self.alive[slot as usize] = false;
                    self.heap.remove(slot);
                    self.cache.evict(slot);
                }
                Some((dist, path)) => {
                    self.cache.install(slot, dist, path);
                    let score = instance.request(RequestId(slot)).density() * dist;
                    self.heap.update(slot, score);
                }
            }
        }
    }
}
