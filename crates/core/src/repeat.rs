//! Algorithm 3 — `Bounded-UFP-Repeat(ε)`: the `(1+ε)`-approximation for
//! the unsplittable flow **with repetitions** problem (Theorem 5.1).
//!
//! Identical loop structure to Algorithm 1 except that a satisfied request
//! stays in the pool (the output `W` is a multiset) and the only stopping
//! conditions are the dual guard and path exhaustion. The paper bounds the
//! iteration count by `m · c_max / d_min`: every iteration multiplies some
//! `y_e` by at least `e^{εB d_min / c_max}`, and each `y_e` can grow by at
//! most a factor `e^{εB}` before the guard trips. We keep that bound as a
//! hard cap and surface it in the run result so experiment E6/E9 can check
//! it.
//!
//! The dual certificate is Claim 5.2: `OPT ≤ D(i)/α(i)` per iteration —
//! in sharp contrast with Algorithm 1, the certified gap here converges to
//! `1 + ε` rather than `e/(e−1)`.

use ufp_par::Pool;

use crate::bounded_ufp::shortest_paths_grouped_for_repeat;
use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::solution::UfpSolution;
use crate::trace::{Certificate, IterationRecord, RunTrace, StopReason};
use crate::weights::DualWeights;

/// Configuration for [`bounded_ufp_repeat`].
#[derive(Clone, Debug)]
pub struct RepeatConfig {
    /// Accuracy parameter ε ∈ (0, 1]. Theorem 5.1 calls the algorithm
    /// with `ε/6` for a `(1+ε)` guarantee when `B ≥ ln(m)/ε²`.
    pub epsilon: f64,
    /// Parallelism for the shortest-path fan-out.
    pub pool: Pool,
    /// Optional cap overriding the theoretical `m·c_max/d_min` bound
    /// (useful to keep exploratory runs short). `None` = theoretical cap.
    pub max_iterations: Option<usize>,
}

impl Default for RepeatConfig {
    fn default() -> Self {
        RepeatConfig {
            epsilon: 0.1,
            pool: Pool::sequential(),
            max_iterations: None,
        }
    }
}

impl RepeatConfig {
    /// Configuration with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must lie in (0,1]");
        RepeatConfig {
            epsilon,
            ..Default::default()
        }
    }
}

/// Result of a repetition run.
#[derive(Clone, Debug)]
pub struct RepeatRunResult {
    /// The multiset allocation.
    pub solution: UfpSolution,
    /// Per-iteration trace with the Claim 5.2 certificate.
    pub trace: RunTrace,
    /// The theoretical iteration bound `⌈m · c_max / d_min⌉` used as cap.
    pub iteration_bound: usize,
}

impl RepeatRunResult {
    /// Certified upper bound on the (fractional, hence also integral
    /// repetition) optimum via Claim 5.2.
    pub fn dual_upper_bound(&self) -> Option<f64> {
        self.trace.dual_upper_bound()
    }

    /// Certified ratio `bound / value`.
    pub fn certified_ratio(&self, instance: &UfpInstance) -> Option<f64> {
        let v = self.solution.value(instance);
        if v <= 0.0 {
            return None;
        }
        self.dual_upper_bound().map(|d| d / v)
    }
}

/// Run Algorithm 3 on a normalized instance.
pub fn bounded_ufp_repeat(instance: &UfpInstance, config: &RepeatConfig) -> RepeatRunResult {
    assert!(
        instance.is_normalized(),
        "Bounded-UFP-Repeat requires a normalized instance"
    );
    assert!(
        config.epsilon > 0.0 && config.epsilon <= 1.0,
        "epsilon must lie in (0, 1]"
    );
    let graph = instance.graph();
    let eps = config.epsilon;
    let b = graph.min_capacity();
    let ln_guard = eps * (b - 1.0);

    // Theorem 5.1 runtime bound: each of the m edges can absorb at most
    // c_max/d_min multiplicative updates before the guard trips.
    let theoretical = if instance.num_requests() == 0 || graph.num_edges() == 0 {
        0
    } else {
        let ratio = graph.max_capacity() / instance.min_demand();
        (graph.num_edges() as f64 * ratio).ceil() as usize + 1
    };
    let cap = config.max_iterations.unwrap_or(theoretical);

    let mut weights = DualWeights::new(graph);
    let all: Vec<RequestId> = instance.request_ids().collect();
    let mut solution = UfpSolution::empty();
    let mut routed_value = 0.0f64;
    let mut records: Vec<IterationRecord> = Vec::new();

    let stop_reason = loop {
        if all.is_empty() {
            break StopReason::Exhausted;
        }
        if records.len() >= cap {
            break StopReason::IterationCap;
        }
        let ln_d1 = weights.ln_dual_sum();
        if ln_d1 > ln_guard {
            break StopReason::Guard;
        }

        let findings = shortest_paths_grouped_for_repeat(instance, &all, &weights, &config.pool);
        let mut best: Option<(f64, usize)> = None;
        for (i, f) in findings.iter().enumerate() {
            let score = instance.request(f.0).density() * f.1;
            let better = match best {
                None => true,
                Some((bs, bi)) => score < bs || (score == bs && f.0 < findings[bi].0),
            };
            if better {
                best = Some((score, i));
            }
        }
        let Some((score, idx)) = best else {
            break StopReason::NoPath;
        };
        let (rid, _, path) = &findings[idx];
        let req = *instance.request(*rid);

        let ln_alpha = if score > 0.0 {
            score.ln() + weights.shift()
        } else {
            f64::NEG_INFINITY
        };
        records.push(IterationRecord {
            selected: *rid,
            ln_alpha,
            ln_d1,
            routed_value_before: routed_value,
        });

        for &e in path.edges() {
            let c = weights.capacity(e);
            weights.bump(e, eps * b * req.demand / c);
        }
        routed_value += req.value;
        solution.routed.push((*rid, path.clone()));
    };

    let trace = RunTrace {
        records,
        ln_guard_threshold: ln_guard,
        stop_reason,
        certificate: Certificate::Claim52,
    };
    RepeatRunResult {
        solution,
        trace,
        iteration_bound: theoretical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn repeats_a_single_request_to_fill_capacity() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 20.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 1.0)]);
        let res = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(0.3));
        // With repetitions the single request is routed many times; output
        // must stay capacity-feasible.
        assert!(res.solution.len() > 1, "expected repetitions");
        assert!(res.solution.check_feasible(&inst, true).is_ok());
        assert!(res.solution.len() <= 20);
    }

    #[test]
    fn certified_ratio_close_to_one() {
        // Theorem 5.1: (1+6ε)-approximation when B >= ln(m)/eps^2.
        // Single edge, capacity 100, one unit request: OPT_repeat = 100.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 100.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 1.0)]);
        let eps = 0.1; // needs B >= ln(1)/eps^2 — trivially satisfied
        let res = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(eps));
        let val = res.solution.value(&inst);
        let bound = res.dual_upper_bound().expect("claim 5.2 certificate");
        assert!(bound >= val - 1e-9);
        let ratio = bound / val;
        assert!(
            ratio <= 1.0 + 6.0 * eps + 0.05,
            "certified ratio {ratio} exceeds 1+6eps"
        );
    }

    #[test]
    fn respects_iteration_cap_override() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 50.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 1.0)]);
        let mut cfg = RepeatConfig::with_epsilon(0.5);
        cfg.max_iterations = Some(3);
        let res = bounded_ufp_repeat(&inst, &cfg);
        assert_eq!(res.solution.len(), 3);
        assert_eq!(res.trace.stop_reason, StopReason::IterationCap);
    }

    #[test]
    fn iteration_bound_matches_theorem() {
        let mut gb = GraphBuilder::directed(3);
        gb.add_edge(n(0), n(1), 8.0);
        gb.add_edge(n(1), n(2), 4.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(2), 0.5, 1.0)]);
        let res = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(0.5));
        // bound = ceil(m * c_max / d_min) + 1 = ceil(2 * 8 / 0.5) + 1 = 33
        assert_eq!(res.iteration_bound, 33);
        assert!(res.trace.iterations() <= res.iteration_bound);
    }

    #[test]
    fn multiple_requests_prefer_the_dense_one() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 30.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 5.0),
            ],
        );
        let res = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(0.3));
        // All repetitions should go to the value-5 request (same demand).
        let count_dense = res
            .solution
            .routed
            .iter()
            .filter(|(r, _)| *r == RequestId(1))
            .count();
        assert_eq!(count_dense, res.solution.len());
        assert!(res.solution.check_feasible(&inst, true).is_ok());
    }

    #[test]
    fn empty_request_set() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(gb.build(), vec![]);
        let res = bounded_ufp_repeat(&inst, &RepeatConfig::default());
        assert!(res.solution.is_empty());
        assert_eq!(res.trace.stop_reason, StopReason::Exhausted);
    }
}
