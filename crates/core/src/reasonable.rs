//! The paper's family of *reasonable iterative path-minimizing algorithms*
//! (Definitions 3.9 and 3.10), as a pluggable engine.
//!
//! An algorithm in this family repeatedly selects, among all paths of all
//! still-unselected requests, one minimizing a *reasonable* priority
//! function of the current flow state, routes it, and repeats. The
//! paper proves (Theorems 3.11, 3.12) that **no** member of this family
//! beats `e/(e−1) − o(1)` on directed graphs or `4/3` in general — the
//! lower bounds are tie-break-adversarial, so the engine exposes the
//! tie-break policy explicitly.
//!
//! Scores implemented (all reasonable in the sense of Def. 3.9):
//!
//! * [`PrimalDualScore`] — `h(p) = (d/v)·Σ_e (1/c_e)·e^{εB f_e/c_e}`, the
//!   function minimized by Algorithm 1 (the paper shows this identity in
//!   §3.3).
//! * [`LengthBiasedScore`] — `h₁(p) = ln(1+|p|)·h(p)`, the paper's example
//!   of a mildly hop-biased reasonable function.
//! * [`ProductScore`] — `h₂(p) = (d/v)·Π_e f_e/c_e`, the paper's example
//!   of a reasonable function "although it is not clear why anyone would
//!   like to use it".
//! * [`HopScore`] — `(d/v)·|p|`, plain congestion-blind greedy.
//!
//! Paths are *residual-feasible* (bottleneck ≥ demand): the family, as
//! analyzed in the lower-bound proofs, keeps routing "until it cannot
//! route more requests" — there is no dual guard here.

use ufp_netgraph::enumerate::simple_paths;
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::path::Path;
use ufp_par::Pool;

use crate::instance::UfpInstance;
use crate::request::{Request, RequestId};
use crate::solution::UfpSolution;

/// Flow-state context handed to scores.
pub struct ScoreCtx<'a> {
    /// The network.
    pub graph: &'a Graph,
    /// Current flow `f_e` per edge.
    pub flow: &'a [f64],
    /// The ε parameter used by exponential scores.
    pub epsilon: f64,
    /// The bound `B = min_e c_e`.
    pub b: f64,
}

/// A reasonable priority function over paths (Definition 3.9). Lower is
/// better. Implementations must be pure functions of `(ctx, req, path)`.
pub trait PathScore: Sync {
    /// Human-readable name for tables and logs.
    fn name(&self) -> &'static str;
    /// Score the path; the engine minimizes this.
    fn score(&self, ctx: &ScoreCtx<'_>, req: &Request, path: &Path) -> f64;
}

/// `h(p) = (d/v)·Σ_e (1/c_e)·e^{εB f_e / c_e}` — Algorithm 1's function.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrimalDualScore;

impl PathScore for PrimalDualScore {
    fn name(&self) -> &'static str {
        "h (primal-dual)"
    }
    fn score(&self, ctx: &ScoreCtx<'_>, req: &Request, path: &Path) -> f64 {
        let sum: f64 = path
            .edges()
            .iter()
            .map(|e| {
                let c = ctx.graph.capacity(*e);
                (ctx.epsilon * ctx.b * ctx.flow[e.index()] / c).exp() / c
            })
            .sum();
        req.density() * sum
    }
}

/// `h₁(p) = ln(1+|p|)·h(p)` — hop-biased variant from §3.3.
#[derive(Clone, Copy, Debug, Default)]
pub struct LengthBiasedScore;

impl PathScore for LengthBiasedScore {
    fn name(&self) -> &'static str {
        "h1 (length-biased)"
    }
    fn score(&self, ctx: &ScoreCtx<'_>, req: &Request, path: &Path) -> f64 {
        (1.0 + path.len() as f64).ln() * PrimalDualScore.score(ctx, req, path)
    }
}

/// `h₂(p) = (d/v)·Π_e f_e/c_e` — the paper's curiosity example.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProductScore;

impl PathScore for ProductScore {
    fn name(&self) -> &'static str {
        "h2 (product)"
    }
    fn score(&self, ctx: &ScoreCtx<'_>, req: &Request, path: &Path) -> f64 {
        let prod: f64 = path
            .edges()
            .iter()
            .map(|e| ctx.flow[e.index()] / ctx.graph.capacity(*e))
            .product();
        req.density() * prod
    }
}

/// `(d/v)·|p|` — congestion-blind hop count.
#[derive(Clone, Copy, Debug, Default)]
pub struct HopScore;

impl PathScore for HopScore {
    fn name(&self) -> &'static str {
        "hops"
    }
    fn score(&self, _ctx: &ScoreCtx<'_>, req: &Request, path: &Path) -> f64 {
        req.density() * path.len() as f64
    }
}

/// Tie-break policy among equal-score candidates. The lower-bound
/// theorems hold for *adversarial* tie-breaking; these policies realize
/// the adversary's schedules from the paper's proofs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Lowest request id, then first-discovered path. The neutral default.
    LowestRequest,
    /// Figure 2 adversary: lowest request id (sources are numbered in
    /// blocks, so this is "minimal i"), then the path whose *second*
    /// vertex has the highest id ("j maximal").
    HighestSecondNode,
    /// Figure 3 adversary: prefer paths through the hub vertex, then
    /// lowest request id, then first-discovered path.
    ViaHub(NodeId),
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// ε used by exponential scores (irrelevant for [`HopScore`]).
    pub epsilon: f64,
    /// Tie-break policy.
    pub tie: TieBreak,
    /// Path-enumeration hop cap (`usize::MAX` = unbounded).
    pub max_hops: usize,
    /// Path-enumeration count cap per request per iteration.
    pub max_paths_per_request: usize,
    /// Parallelism over requests within an iteration.
    pub pool: Pool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epsilon: 0.5,
            tie: TieBreak::LowestRequest,
            max_hops: usize::MAX,
            max_paths_per_request: 10_000,
            pool: Pool::sequential(),
        }
    }
}

/// One selected candidate (diagnostics).
#[derive(Clone, Debug)]
struct Candidate {
    request: RequestId,
    path: Path,
    score: f64,
}

/// Result of an engine run.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// The allocation produced by the iterative minimizer.
    pub solution: UfpSolution,
    /// Number of iterations (= number of routed requests).
    pub iterations: usize,
}

/// Does `a` beat `b` under the tie policy? Scores compare exactly: the
/// adversarial constructions produce bit-identical scores for symmetric
/// paths, which is precisely when the tie policy must decide.
fn better(a: &Candidate, b: &Candidate, tie: TieBreak) -> bool {
    if a.score < b.score {
        return true;
    }
    if a.score > b.score {
        return false;
    }
    match tie {
        TieBreak::LowestRequest => a.request < b.request,
        TieBreak::HighestSecondNode => {
            if a.request != b.request {
                return a.request < b.request;
            }
            let sa = a.path.nodes().get(1).map(|n| n.0).unwrap_or(0);
            let sb = b.path.nodes().get(1).map(|n| n.0).unwrap_or(0);
            sa > sb
        }
        TieBreak::ViaHub(hub) => {
            let ha = a.path.nodes().contains(&hub);
            let hb = b.path.nodes().contains(&hub);
            if ha != hb {
                return ha;
            }
            a.request < b.request
        }
    }
}

/// Run a reasonable iterative path-minimizing algorithm with the given
/// score. Routes until no unselected request has a residual-feasible
/// path. Requires a normalized instance.
pub fn iterative_path_minimizer(
    instance: &UfpInstance,
    score: &dyn PathScore,
    config: &EngineConfig,
) -> EngineResult {
    assert!(
        instance.is_normalized(),
        "engine requires normalized demands"
    );
    let graph = instance.graph();
    let b = graph.min_capacity();
    let mut flow = vec![0.0f64; graph.num_edges()];
    let mut residual: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    let mut remaining: Vec<RequestId> = instance.request_ids().collect();
    let mut solution = UfpSolution::empty();

    loop {
        if remaining.is_empty() {
            break;
        }
        let ctx = ScoreCtx {
            graph,
            flow: &flow,
            epsilon: config.epsilon,
            b,
        };
        // Per-request best candidate, in parallel. The per-request
        // reduction applies the same tie policy so the global reduction
        // sees each request's policy-preferred path.
        let residual_ref = &residual;
        let per_request: Vec<Option<Candidate>> = config.pool.map(&remaining, |_, &rid| {
            let req = instance.request(rid);
            let paths = simple_paths(
                graph,
                req.src,
                req.dst,
                config.max_hops,
                config.max_paths_per_request,
                |e| residual_ref[e.index()] >= req.demand - 1e-12,
            );
            let mut best: Option<Candidate> = None;
            for path in paths {
                let cand = Candidate {
                    request: rid,
                    score: score.score(&ctx, req, &path),
                    path,
                };
                let is_better = match &best {
                    None => true,
                    Some(b) => better(&cand, b, config.tie),
                };
                if is_better {
                    best = Some(cand);
                }
            }
            best
        });

        let mut winner: Option<Candidate> = None;
        for cand in per_request.into_iter().flatten() {
            let is_better = match &winner {
                None => true,
                Some(w) => better(&cand, w, config.tie),
            };
            if is_better {
                winner = Some(cand);
            }
        }
        let Some(w) = winner else {
            break; // nobody has a residual-feasible path: stop.
        };
        let demand = instance.request(w.request).demand;
        for &e in w.path.edges() {
            flow[e.index()] += demand;
            residual[e.index()] -= demand;
        }
        remaining.retain(|r| *r != w.request);
        solution.routed.push((w.request, w.path));
    }

    let iterations = solution.len();
    EngineResult {
        solution,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn diamond_instance(cap: f64, requests: usize) -> UfpInstance {
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), cap);
        gb.add_edge(n(1), n(3), cap);
        gb.add_edge(n(0), n(2), cap);
        gb.add_edge(n(2), n(3), cap);
        UfpInstance::new(
            gb.build(),
            (0..requests)
                .map(|_| Request::new(n(0), n(3), 1.0, 1.0))
                .collect(),
        )
    }

    #[test]
    fn fills_both_diamond_paths() {
        let inst = diamond_instance(3.0, 10);
        let res = iterative_path_minimizer(&inst, &PrimalDualScore, &EngineConfig::default());
        // 2 disjoint paths of capacity 3 each: exactly 6 requests fit.
        assert_eq!(res.solution.len(), 6);
        assert!(res.solution.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn all_scores_terminate_and_stay_feasible() {
        let inst = diamond_instance(2.0, 8);
        let scores: Vec<Box<dyn PathScore>> = vec![
            Box::new(PrimalDualScore),
            Box::new(LengthBiasedScore),
            Box::new(ProductScore),
            Box::new(HopScore),
        ];
        for s in &scores {
            let res = iterative_path_minimizer(&inst, s.as_ref(), &EngineConfig::default());
            assert_eq!(res.solution.len(), 4, "score {}", s.name());
            assert!(res.solution.check_feasible(&inst, false).is_ok());
        }
    }

    #[test]
    fn primal_dual_score_matches_closed_form() {
        let inst = diamond_instance(2.0, 1);
        let flow = vec![1.0, 0.0, 2.0, 0.5];
        let ctx = ScoreCtx {
            graph: inst.graph(),
            flow: &flow,
            epsilon: 0.5,
            b: 2.0,
        };
        let req = Request::new(n(0), n(3), 0.5, 2.0);
        let path = Path::new(
            vec![n(0), n(1), n(3)],
            vec![ufp_netgraph::ids::EdgeId(0), ufp_netgraph::ids::EdgeId(1)],
        );
        // h = (0.5/2)·[ (1/2)e^{0.5·2·1/2} + (1/2)e^{0} ] = 0.25·(e^{0.5}+1)/2
        let expected = 0.25 * ((0.5f64).exp() + 1.0) / 2.0;
        let got = PrimalDualScore.score(&ctx, &req, &path);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
        // h1 multiplies by ln(3)
        let got1 = LengthBiasedScore.score(&ctx, &req, &path);
        assert!((got1 - (3.0f64).ln() * expected).abs() < 1e-12);
        // h2 = 0.25 · (1/2)·(0/2) = 0
        assert_eq!(ProductScore.score(&ctx, &req, &path), 0.0);
        // hops = 0.25 · 2
        assert_eq!(HopScore.score(&ctx, &req, &path), 0.5);
    }

    #[test]
    fn highest_second_node_tiebreak() {
        // Two parallel 2-hop routes 0->1->3 and 0->2->3, equal everything:
        // the tie-break must pick the one through node 2.
        let inst = diamond_instance(2.0, 1);
        let cfg = EngineConfig {
            tie: TieBreak::HighestSecondNode,
            ..Default::default()
        };
        let res = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        assert_eq!(res.solution.routed[0].1.nodes()[1], n(2));
    }

    #[test]
    fn via_hub_tiebreak() {
        let inst = diamond_instance(2.0, 1);
        let cfg = EngineConfig {
            tie: TieBreak::ViaHub(n(1)),
            ..Default::default()
        };
        let res = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        assert_eq!(res.solution.routed[0].1.nodes()[1], n(1));
    }

    #[test]
    fn lowest_request_selects_in_id_order_on_symmetric_input() {
        let inst = diamond_instance(4.0, 4);
        let res = iterative_path_minimizer(&inst, &PrimalDualScore, &EngineConfig::default());
        // first iteration must route request 0
        assert_eq!(res.solution.routed[0].0, RequestId(0));
    }

    #[test]
    fn respects_capacity_exactly() {
        // capacity 1 on a single path: only one unit request fits.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 1.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 9.0),
            ],
        );
        let res = iterative_path_minimizer(&inst, &PrimalDualScore, &EngineConfig::default());
        assert_eq!(res.solution.len(), 1);
        // value-9 request has smaller d/v => smaller score, wins
        assert!(res.solution.contains(RequestId(1)));
    }

    #[test]
    fn parallel_matches_sequential() {
        let inst = diamond_instance(5.0, 12);
        let seq = iterative_path_minimizer(&inst, &PrimalDualScore, &EngineConfig::default());
        let cfg = EngineConfig {
            pool: Pool::new(4),
            ..Default::default()
        };
        let par = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        assert_eq!(seq.solution.len(), par.solution.len());
        for (a, b) in seq.solution.routed.iter().zip(&par.solution.routed) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.nodes(), b.1.nodes());
        }
    }
}
