//! Log-space dual edge weights `y_e`.
//!
//! Algorithm 1 maintains `y_e`, starts them at `1/c_e`, and multiplies by
//! `e^{εB d/c_e}` per update. For small ε the stop threshold
//! `e^{ε(B−1)}` with `B = ln(m)/ε²` is `m^{(B−1)/(εB)} ≈ e^{ln(m)/ε}`,
//! which overflows `f64` well inside the interesting parameter range
//! (ε = 0.02, m = 10⁴ gives e⁴⁶⁰). We therefore store `ln y_e` exactly and
//! *materialize* shifted weights `w_e = e^{ln y_e − shift}` for the
//! shortest-path queries. Every quantity the algorithm compares is
//! scale-invariant:
//!
//! * path selection minimizes `(d/v)·Σ w_e`, a positive multiple of
//!   `(d/v)·Σ y_e`;
//! * the stop guard compares `ln Σ c_e y_e` (a stable log-sum-exp)
//!   against `ε(B−1)`;
//! * the dual certificate needs `D₁(i)/α(i)`, a ratio in which the shift
//!   cancels.
//!
//! Underflow (an edge 600+ orders of magnitude lighter than the heaviest)
//! flushes to zero weight, which only perturbs comparisons among paths
//! whose total weight is already negligible; the returned guard and
//! certificates remain exact because they live in log space.

use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::EdgeId;

/// How far `ln y_e − shift` may grow before re-centering. `e^600` is
/// comfortably below the `f64` overflow point even when summed over
/// millions of edges.
const RECENTER_AT: f64 = 600.0;

/// Exported [`DualWeights`] state — the minimal field set from which the
/// full weight vector (including the materialized Dijkstra weights)
/// rebuilds **bit-identically**. The materialized `w_e` are omitted on
/// purpose: they are always exactly `exp(ln_y − shift)` for active edges
/// (every code path that writes one computes that expression), so
/// [`DualWeights::import`] re-derives them from the same inputs with the
/// same operation and gets the same bits.
///
/// Produced by [`DualWeights::export`]; consumed by
/// [`DualWeights::import`]. This is the standalone persistence surface
/// for tools that checkpoint a run *mid-epoch* (the engine's snapshot
/// layer itself persists only the carried ln-space exponents between
/// epochs and rebuilds the per-epoch weights from them, so it does not
/// go through this struct).
#[derive(Clone, Debug, PartialEq)]
pub struct DualWeightsState {
    /// `ln y_e` per edge (masked edges hold the inert `0.0` placeholder).
    pub ln_y: Vec<f64>,
    /// Current log-sum-exp shift.
    pub shift: f64,
    /// Running maximum of `ln y_e` over active edges.
    pub max_ln_y: f64,
    /// Effective capacities the weights were initialized from.
    pub caps: Vec<f64>,
    /// Epoch-mode usability mask (`None` = one-shot mode, all active).
    pub active: Option<Vec<bool>>,
}

/// The dual weight vector of Algorithm 1, kept in log space.
#[derive(Clone, Debug)]
pub struct DualWeights {
    ln_y: Vec<f64>,
    /// Materialized `exp(ln_y − shift)`, the weights handed to Dijkstra.
    w: Vec<f64>,
    shift: f64,
    max_ln_y: f64,
    caps: Vec<f64>,
    /// `None` = every edge participates in the dual sum (the one-shot
    /// algorithm). `Some(mask)` = epoch mode: saturated edges are frozen
    /// out of `D₁` so a full link cannot trip the guard for the whole
    /// residual network.
    active: Option<Vec<bool>>,
    /// Re-centerings performed (observability only — not part of the
    /// persisted [`DualWeightsState`]; import restarts the count).
    recenters: u64,
}

impl DualWeights {
    /// Initialize `y_e = 1/c_e` (line 4 of Algorithm 1).
    pub fn new(graph: &Graph) -> Self {
        let caps: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
        Self::from_parts(caps, None, None)
    }

    /// Epoch-mode initialization for the streaming engine: effective
    /// (residual) capacities, an admissibility mask, and carried
    /// ln-space exponents from earlier epochs, so
    /// `ln y_e = −ln c_e + carry_e` for usable edges. Unusable edges hold
    /// an inert placeholder entry (`ln y = 0`, weight `0`): Dijkstra
    /// filters them out of paths, [`DualWeights::ln_dual_sum`] skips
    /// them, and crucially they do not participate in the log-sum-exp
    /// `shift` — a saturated zero-residual edge must not push every real
    /// weight into the subnormal range.
    pub fn with_context(capacities: &[f64], usable: &[bool], carry: &[f64]) -> Self {
        assert_eq!(capacities.len(), usable.len());
        assert_eq!(capacities.len(), carry.len());
        Self::from_parts(capacities.to_vec(), Some(usable.to_vec()), Some(carry))
    }

    #[inline]
    fn is_active(&self, i: usize) -> bool {
        self.active.as_ref().is_none_or(|m| m[i])
    }

    fn from_parts(caps: Vec<f64>, active: Option<Vec<bool>>, carry: Option<&[f64]>) -> Self {
        let usable = |i: usize| active.as_ref().is_none_or(|m| m[i]);
        let ln_y: Vec<f64> = caps
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if usable(i) {
                    -(c.ln()) + carry.map_or(0.0, |k| k[i])
                } else {
                    // Inert placeholder: masked edges (possibly residual 0)
                    // never enter paths, sums, or the shift scale.
                    0.0
                }
            })
            .collect();
        let max_ln_y = ln_y
            .iter()
            .enumerate()
            .filter(|&(i, _)| usable(i))
            .map(|(_, &l)| l)
            .fold(f64::NEG_INFINITY, f64::max);
        let shift = if max_ln_y.is_finite() { max_ln_y } else { 0.0 };
        let w = ln_y
            .iter()
            .enumerate()
            .map(|(i, l)| if usable(i) { (l - shift).exp() } else { 0.0 })
            .collect();
        DualWeights {
            ln_y,
            w,
            shift,
            max_ln_y,
            caps,
            active,
            recenters: 0,
        }
    }

    /// Materialized weights for shortest-path queries (`∝ y_e`).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The scale such that `y_e = weights()[e] · e^{shift}`.
    #[inline]
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Running maximum of `ln y_e` over active edges — the dual-weight
    /// growth signal the observability layer gauges per epoch.
    #[inline]
    pub fn max_ln_y(&self) -> f64 {
        self.max_ln_y
    }

    /// Log-sum-exp re-centerings performed on this weight vector so
    /// far (resets on [`DualWeights::import`]).
    #[inline]
    pub fn recenters(&self) -> u64 {
        self.recenters
    }

    /// `ln y_e`, exact (masked edges hold an inert `0.0` placeholder).
    #[inline]
    pub fn ln_y(&self, e: EdgeId) -> f64 {
        self.ln_y[e.index()]
    }

    /// Apply the multiplicative update `y_e ← y_e · e^{exponent}`
    /// (line 10: `exponent = εB d / c_e`), re-centering if needed. Must
    /// only be called on usable edges (routed paths never cross masked
    /// ones).
    pub fn bump(&mut self, e: EdgeId, exponent: f64) {
        debug_assert!(exponent >= 0.0, "weight updates only grow");
        debug_assert!(self.is_active(e.index()), "bump on a masked edge");
        let i = e.index();
        self.ln_y[i] += exponent;
        if self.ln_y[i] > self.max_ln_y {
            self.max_ln_y = self.ln_y[i];
        }
        if self.max_ln_y - self.shift > RECENTER_AT {
            self.recenter();
        } else {
            self.w[i] = (self.ln_y[i] - self.shift).exp();
        }
    }

    fn recenter(&mut self) {
        self.recenters += 1;
        self.shift = self.max_ln_y;
        for i in 0..self.w.len() {
            self.w[i] = if self.is_active(i) {
                (self.ln_y[i] - self.shift).exp()
            } else {
                0.0
            };
        }
    }

    /// `ln Σ_e c_e y_e` — the guard quantity `D₁`, via stable log-sum-exp.
    /// In epoch mode the sum runs over usable edges only.
    pub fn ln_dual_sum(&self) -> f64 {
        let sum: f64 = match &self.active {
            None => self.w.iter().zip(&self.caps).map(|(w, c)| w * c).sum(),
            Some(mask) => self
                .w
                .iter()
                .zip(&self.caps)
                .zip(mask)
                .filter(|&(_, &a)| a)
                .map(|((w, c), _)| w * c)
                .sum(),
        };
        sum.ln() + self.shift
    }

    /// Export the serializable state (see [`DualWeightsState`] for what
    /// is and is not included).
    pub fn export(&self) -> DualWeightsState {
        DualWeightsState {
            ln_y: self.ln_y.clone(),
            shift: self.shift,
            max_ln_y: self.max_ln_y,
            caps: self.caps.clone(),
            active: self.active.clone(),
        }
    }

    /// Rebuild a weight vector from exported state, rematerializing the
    /// Dijkstra weights bit-identically. Returns `None` on structurally
    /// invalid state — mismatched lengths, or non-finite shift / `ln y`
    /// / capacity entries that would poison every shortest-path
    /// comparison with NaNs — so persistence layers can surface a typed
    /// error instead of panicking. (`max_ln_y = −∞` alone is legal: it
    /// is the genuine state when every edge is masked.)
    pub fn import(state: DualWeightsState) -> Option<Self> {
        let DualWeightsState {
            ln_y,
            shift,
            max_ln_y,
            caps,
            active,
        } = state;
        if ln_y.len() != caps.len() {
            return None;
        }
        if let Some(mask) = &active {
            if mask.len() != caps.len() {
                return None;
            }
        }
        if !shift.is_finite() && !ln_y.is_empty() {
            return None;
        }
        if ln_y.iter().any(|l| !l.is_finite()) {
            return None;
        }
        if caps.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return None;
        }
        if max_ln_y.is_nan() || max_ln_y == f64::INFINITY {
            return None;
        }
        let is_active = |i: usize| active.as_ref().is_none_or(|m| m[i]);
        let w = ln_y
            .iter()
            .enumerate()
            .map(|(i, l)| if is_active(i) { (l - shift).exp() } else { 0.0 })
            .collect();
        Some(DualWeights {
            ln_y,
            w,
            shift,
            max_ln_y,
            caps,
            active,
            recenters: 0,
        })
    }

    /// Capacity of edge `e` (cached copy for the hot loop).
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.caps[e.index()]
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.ln_y.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.ln_y.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn graph_with_caps(caps: &[f64]) -> Graph {
        let mut b = GraphBuilder::directed(caps.len() + 1);
        for (i, &c) in caps.iter().enumerate() {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), c);
        }
        b.build()
    }

    #[test]
    fn initial_state_matches_paper() {
        let g = graph_with_caps(&[2.0, 4.0]);
        let w = DualWeights::new(&g);
        // y_e = 1/c_e; D1(0) = Σ c_e · (1/c_e) = m
        assert!((w.ln_dual_sum() - (2.0f64).ln()).abs() < 1e-12);
        assert!((w.ln_y(EdgeId(0)) - (0.5f64).ln()).abs() < 1e-12);
        // ratios of materialized weights equal ratios of y
        let ratio = w.weights()[0] / w.weights()[1];
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bump_multiplies() {
        let g = graph_with_caps(&[1.0, 1.0]);
        let mut w = DualWeights::new(&g);
        w.bump(EdgeId(0), 1.0);
        let ratio = w.weights()[0] / w.weights()[1];
        assert!((ratio - std::f64::consts::E).abs() < 1e-9);
        // D1 = e^1 · 1 + 1 = e + 1
        let expected = (std::f64::consts::E + 1.0f64).ln();
        assert!((w.ln_dual_sum() - expected).abs() < 1e-9);
    }

    #[test]
    fn survives_enormous_exponents() {
        let g = graph_with_caps(&[1.0, 1.0]);
        let mut w = DualWeights::new(&g);
        // Push one edge 10,000 e-folds up — far beyond f64 range.
        for _ in 0..100 {
            w.bump(EdgeId(0), 100.0);
        }
        assert!((w.ln_y(EdgeId(0)) - 10_000.0).abs() < 1e-6);
        assert!((w.ln_dual_sum() - 10_000.0).abs() < 1e-6);
        // Materialized weights stay finite and ordered.
        assert!(w.weights()[0].is_finite());
        assert!(w.weights()[0] > 0.0);
        assert!(w.weights()[1] >= 0.0); // may underflow to zero — allowed
        assert!(w.weights()[0] > w.weights()[1]);
    }

    #[test]
    fn recentering_preserves_ratios() {
        let g = graph_with_caps(&[1.0, 1.0, 1.0]);
        let mut w = DualWeights::new(&g);
        w.bump(EdgeId(0), 100.0);
        w.bump(EdgeId(1), 50.0);
        // ln-ratio of edges 0 and 1 must be exactly 50.
        let r = (w.weights()[0] / w.weights()[1]).ln();
        assert!((r - 50.0).abs() < 1e-9);
        // force recenter
        w.bump(EdgeId(0), 600.0);
        let r2 = (w.ln_y(EdgeId(0)) - w.ln_y(EdgeId(1))).abs();
        assert!((r2 - 650.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_context_matches_fresh_weights() {
        // Trivial context (full caps, all usable, zero carry) must be
        // bit-identical to DualWeights::new — the engine/offline
        // equivalence hinges on it.
        let g = graph_with_caps(&[2.0, 4.0, 8.0]);
        let fresh = DualWeights::new(&g);
        let caps: Vec<f64> = g.edges().iter().map(|e| e.capacity).collect();
        let ctx = DualWeights::with_context(&caps, &[true; 3], &[0.0; 3]);
        assert_eq!(fresh.weights(), ctx.weights());
        assert_eq!(fresh.shift(), ctx.shift());
        assert_eq!(fresh.ln_dual_sum(), ctx.ln_dual_sum());
    }

    #[test]
    fn masked_edges_leave_the_dual_sum() {
        let g = graph_with_caps(&[1.0, 1.0]);
        let caps: Vec<f64> = g.edges().iter().map(|e| e.capacity).collect();
        let all = DualWeights::with_context(&caps, &[true, true], &[0.0, 0.0]);
        let one = DualWeights::with_context(&caps, &[true, false], &[0.0, 0.0]);
        // D1 = 2 with both edges, 1 with one edge.
        assert!((all.ln_dual_sum() - (2.0f64).ln()).abs() < 1e-12);
        assert!(one.ln_dual_sum().abs() < 1e-12);
    }

    #[test]
    fn carry_preloads_congestion() {
        let g = graph_with_caps(&[1.0, 1.0]);
        let caps: Vec<f64> = g.edges().iter().map(|e| e.capacity).collect();
        let w = DualWeights::with_context(&caps, &[true, true], &[3.0, 0.0]);
        assert!((w.ln_y(EdgeId(0)) - 3.0).abs() < 1e-12);
        assert!((w.weights()[0] / w.weights()[1] - 3.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn zero_residual_capacity_survives() {
        let _g = graph_with_caps(&[4.0, 4.0]);
        let caps = [0.0, 4.0];
        let w = DualWeights::with_context(&caps, &[false, true], &[0.0, 0.0]);
        assert!(w.weights().iter().all(|x| x.is_finite()));
        assert!(w.ln_dual_sum().is_finite());
        // The masked zero-residual edge must not poison the shift scale:
        // the usable edge materializes at full precision (w = 1 at the
        // shift), not as a subnormal.
        assert_eq!(w.weights()[1], 1.0);
        assert_eq!(w.weights()[0], 0.0);
        assert!(w.ln_dual_sum().abs() < 1e-12, "D1 = c·(1/c) = 1, ln = 0");
    }

    #[test]
    fn masked_edges_survive_recenter() {
        let _g = graph_with_caps(&[1.0, 1.0]);
        let caps = [0.0, 1.0];
        let mut w = DualWeights::with_context(&caps, &[false, true], &[0.0, 0.0]);
        // Push the usable edge far enough to force a recenter.
        for _ in 0..8 {
            w.bump(EdgeId(1), 100.0);
        }
        assert_eq!(w.weights()[0], 0.0, "masked edge stays inert");
        assert!((w.ln_y(EdgeId(1)) - 800.0).abs() < 1e-9);
        assert!((w.ln_dual_sum() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn export_import_round_trip_is_bit_identical() {
        // Epoch-mode weights with a mask, carry, and a forced recenter —
        // the hardest state to rebuild. Import must reproduce every
        // materialized weight bit for bit and then evolve identically.
        let caps = [0.0, 3.0, 7.0];
        let mut w = DualWeights::with_context(&caps, &[false, true, true], &[0.0, 2.5, 0.0]);
        w.bump(EdgeId(1), 650.0); // crosses RECENTER_AT
        w.bump(EdgeId(2), 0.125);
        let restored = DualWeights::import(w.export()).expect("valid export");
        assert_eq!(restored.shift().to_bits(), w.shift().to_bits());
        for (a, b) in restored.weights().iter().zip(w.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(restored.ln_dual_sum().to_bits(), w.ln_dual_sum().to_bits());
        // Continued updates stay in lockstep.
        let mut a = w;
        let mut b = restored;
        for (e, x) in [(1u32, 0.25), (2, 100.0), (1, 1e-3)] {
            a.bump(EdgeId(e), x);
            b.bump(EdgeId(e), x);
        }
        for (x, y) in a.weights().iter().zip(b.weights()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.ln_dual_sum().to_bits(), b.ln_dual_sum().to_bits());
    }

    #[test]
    fn import_rejects_inconsistent_state() {
        let g = graph_with_caps(&[1.0, 2.0]);
        let good = DualWeights::new(&g).export();
        let mut short = good.clone();
        short.ln_y.pop();
        assert!(DualWeights::import(short).is_none(), "ln_y length");
        let mut bad_mask = good.clone();
        bad_mask.active = Some(vec![true]);
        assert!(DualWeights::import(bad_mask).is_none(), "mask length");
        let mut bad_shift = good.clone();
        bad_shift.shift = f64::NAN;
        assert!(DualWeights::import(bad_shift).is_none(), "non-finite shift");
        let mut bad_lny = good.clone();
        bad_lny.ln_y[0] = f64::NAN;
        assert!(DualWeights::import(bad_lny).is_none(), "non-finite ln_y");
        let mut bad_caps = good.clone();
        bad_caps.caps[1] = f64::INFINITY;
        assert!(DualWeights::import(bad_caps).is_none(), "non-finite caps");
        let mut bad_max = good.clone();
        bad_max.max_ln_y = f64::INFINITY;
        assert!(DualWeights::import(bad_max).is_none(), "infinite max_ln_y");
        assert!(DualWeights::import(good).is_some());
    }

    #[test]
    fn guard_crossing_detectable() {
        // Simulate the stop condition Σ c_e y_e > e^{ε(B−1)} in log space.
        let g = graph_with_caps(&[8.0]);
        let mut w = DualWeights::new(&g);
        let eps = 0.5;
        let b = 8.0;
        let guard = eps * (b - 1.0); // ln threshold = 3.5
        assert!(w.ln_dual_sum() <= guard);
        // Each unit-demand update bumps by εB/c = 0.5·8/8 = 0.5.
        let mut bumps = 0;
        // Tolerance: the threshold 3.5 falls exactly on the bump grid and
        // log-sum-exp carries ~1e-16 noise.
        while w.ln_dual_sum() <= guard + 1e-9 {
            w.bump(EdgeId(0), 0.5);
            bumps += 1;
            assert!(bumps < 100, "guard never tripped");
        }
        // ln(c·y) = ln(8·y); starts at ln(1)=0, after k bumps = 0.5k, so
        // the first value strictly above 3.5 appears at k = 8.
        assert_eq!(bumps, 8);
    }
}

#[cfg(test)]
mod naive_comparison_tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    /// For exponents small enough that naive `f64` arithmetic is exact,
    /// the log-space representation must agree with a plain
    /// `y_e *= exp(x)` implementation to machine precision — the naive
    /// version is the spec, the log-space one the implementation.
    #[test]
    fn matches_naive_f64_in_the_safe_range() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let caps: Vec<f64> = (0..20).map(|_| rng.random_range(1.0..16.0)).collect();
        let mut gb = GraphBuilder::directed(21);
        for (i, &c) in caps.iter().enumerate() {
            gb.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), c);
        }
        let g = gb.build();
        let mut fancy = DualWeights::new(&g);
        let mut naive: Vec<f64> = caps.iter().map(|c| 1.0 / c).collect();
        for _ in 0..500 {
            let e = rng.random_range(0..caps.len());
            let exponent = rng.random_range(0.0..0.5);
            fancy.bump(EdgeId(e as u32), exponent);
            naive[e] *= exponent.exp();
            // Guard quantity agrees.
            let naive_sum: f64 = naive.iter().zip(&caps).map(|(y, c)| y * c).sum();
            let diff = (fancy.ln_dual_sum() - naive_sum.ln()).abs();
            assert!(diff < 1e-9, "ln dual sum drifted by {diff}");
        }
        // Weight ratios agree too (materialized weights are y up to a
        // common positive factor).
        let k = fancy.weights()[0] / naive[0];
        for (w, y) in fancy.weights().iter().zip(&naive) {
            assert!((w / y - k).abs() < 1e-9 * k, "ratio drifted");
        }
    }
}
