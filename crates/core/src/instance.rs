//! Problem instances: a capacitated graph plus a set of requests.

use std::sync::Arc;

use ufp_lp::Commodity;
use ufp_netgraph::graph::Graph;

use crate::request::{Request, RequestId};

/// A `B`-bounded unsplittable flow instance.
///
/// Follows the paper's normalized convention: demands lie in `(0, 1]` and
/// `B = min_e c_e` is the bound parameter. Instances with larger demands
/// are accepted but flagged un-normalized; call [`UfpInstance::normalized`]
/// before handing them to [`crate::bounded_ufp()`], which insists on the
/// normalized form (normalizing *inside* the algorithm would couple one
/// agent's declaration to every other agent's scaled type and wreck the
/// monotonicity argument).
///
/// The graph is held behind an [`Arc`], so cloning an instance — and in
/// particular building the counterfactual profiles of
/// [`UfpInstance::with_declared_type`], which the mechanism layer does
/// thousands of times per payment — shares the network (CSR included)
/// instead of deep-copying it. Streaming callers that build one instance
/// per epoch over a long-lived network should construct instances with
/// [`UfpInstance::from_shared`] to share a single graph across all epochs.
#[derive(Clone, Debug)]
pub struct UfpInstance {
    graph: Arc<Graph>,
    requests: Vec<Request>,
}

impl UfpInstance {
    /// Build an instance, validating request endpoints against the graph.
    pub fn new(graph: Graph, requests: Vec<Request>) -> Self {
        Self::from_shared(Arc::new(graph), requests)
    }

    /// Build an instance over an already-shared graph (zero-copy: the
    /// instance holds a reference-counted handle, never a deep copy).
    pub fn from_shared(graph: Arc<Graph>, requests: Vec<Request>) -> Self {
        for (i, r) in requests.iter().enumerate() {
            assert!(
                r.src.index() < graph.num_nodes() && r.dst.index() < graph.num_nodes(),
                "request {i} references vertices outside the graph"
            );
        }
        UfpInstance { graph, requests }
    }

    /// The network.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the network (cheap to clone; use this to
    /// build further instances over the same graph without copying it).
    #[inline]
    pub fn shared_graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// All requests, indexed by [`RequestId`].
    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests `|R|`.
    #[inline]
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// The request behind `id`.
    #[inline]
    pub fn request(&self, id: RequestId) -> &Request {
        &self.requests[id.index()]
    }

    /// Iterator over all request ids.
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        (0..self.requests.len() as u32).map(RequestId)
    }

    /// Largest demand among the requests.
    pub fn max_demand(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| r.demand)
            .fold(0.0f64, f64::max)
    }

    /// Smallest demand among the requests (`d_min` in the Theorem 5.1
    /// runtime bound).
    pub fn min_demand(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| r.demand)
            .fold(f64::INFINITY, f64::min)
    }

    /// The paper's bound `B = min_e c_e / max_r d_r`; equals the minimum
    /// capacity when the instance is normalized.
    pub fn bound_b(&self) -> f64 {
        let d = self.max_demand();
        if d <= 0.0 {
            self.graph.min_capacity()
        } else {
            self.graph.min_capacity() / d.max(1.0)
        }
    }

    /// True when every demand lies in `(0, 1]`.
    pub fn is_normalized(&self) -> bool {
        self.max_demand() <= 1.0 + 1e-12
    }

    /// Rescale demands and capacities by `1 / max_r d_r`, producing the
    /// equivalent normalized instance (values are untouched, so objective
    /// values are directly comparable).
    pub fn normalized(&self) -> UfpInstance {
        let d = self.max_demand();
        if d <= 1.0 {
            return self.clone();
        }
        let inv = 1.0 / d;
        let mut builder = match self.graph.kind() {
            ufp_netgraph::graph::GraphKind::Directed => {
                ufp_netgraph::graph::GraphBuilder::directed(self.graph.num_nodes())
            }
            ufp_netgraph::graph::GraphKind::Undirected => {
                ufp_netgraph::graph::GraphBuilder::undirected(self.graph.num_nodes())
            }
        };
        for e in self.graph.edges() {
            builder.add_edge(e.src, e.dst, e.capacity * inv);
        }
        let requests = self
            .requests
            .iter()
            .map(|r| Request::new(r.src, r.dst, r.demand * inv, r.value))
            .collect();
        UfpInstance::new(builder.build(), requests)
    }

    /// Whether the instance satisfies the theorem's large-capacity
    /// requirement `B ≥ ln(m) / ε²` for accuracy `epsilon`.
    pub fn meets_large_capacity_bound(&self, epsilon: f64) -> bool {
        let m = self.graph.num_edges().max(2) as f64;
        self.bound_b() >= m.ln() / (epsilon * epsilon)
    }

    /// The smallest ε for which the `B ≥ ln(m)/ε²` precondition holds.
    pub fn min_supported_epsilon(&self) -> f64 {
        let m = self.graph.num_edges().max(2) as f64;
        (m.ln() / self.bound_b()).sqrt()
    }

    /// Sum of all request values (upper bound on any solution).
    pub fn total_value(&self) -> f64 {
        self.requests.iter().map(|r| r.value).sum()
    }

    /// LP-substrate view of the requests.
    pub fn to_commodities(&self) -> Vec<Commodity> {
        self.requests
            .iter()
            .map(|r| Commodity {
                src: r.src,
                dst: r.dst,
                demand: r.demand,
                value: r.value,
            })
            .collect()
    }

    /// Clone the instance with request `id` given a different declared
    /// type (demand, value). The mechanism layer uses this to probe
    /// counterfactual declarations.
    pub fn with_declared_type(&self, id: RequestId, demand: f64, value: f64) -> UfpInstance {
        let mut requests = self.requests.clone();
        requests[id.index()] = requests[id.index()].with_type(demand, value);
        UfpInstance {
            graph: Arc::clone(&self.graph),
            requests,
        }
    }

    /// Clone the instance without request `id` (for Vickrey–Clarke-style
    /// counterfactuals and tests).
    pub fn without_request(&self, id: RequestId) -> UfpInstance {
        let mut requests = self.requests.clone();
        requests.remove(id.index());
        UfpInstance {
            graph: Arc::clone(&self.graph),
            requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn simple_instance() -> UfpInstance {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(NodeId(0), NodeId(1), 4.0);
        b.add_edge(NodeId(1), NodeId(2), 6.0);
        let g = b.build();
        UfpInstance::new(
            g,
            vec![
                Request::new(NodeId(0), NodeId(2), 1.0, 3.0),
                Request::new(NodeId(0), NodeId(1), 0.5, 1.0),
            ],
        )
    }

    #[test]
    fn accessors() {
        let inst = simple_instance();
        assert_eq!(inst.num_requests(), 2);
        assert_eq!(inst.bound_b(), 4.0);
        assert!(inst.is_normalized());
        assert_eq!(inst.total_value(), 4.0);
        assert_eq!(inst.max_demand(), 1.0);
        assert_eq!(inst.min_demand(), 0.5);
        assert_eq!(inst.request(RequestId(1)).value, 1.0);
    }

    #[test]
    fn normalization_rescales_demands_and_capacities() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(NodeId(0), NodeId(1), 10.0);
        let g = b.build();
        let inst = UfpInstance::new(g, vec![Request::new(NodeId(0), NodeId(1), 4.0, 7.0)]);
        assert!(!inst.is_normalized());
        assert_eq!(inst.bound_b(), 2.5);
        let norm = inst.normalized();
        assert!(norm.is_normalized());
        assert_eq!(norm.request(RequestId(0)).demand, 1.0);
        assert_eq!(norm.request(RequestId(0)).value, 7.0);
        assert_eq!(norm.graph().min_capacity(), 2.5);
        assert_eq!(norm.bound_b(), 2.5);
    }

    #[test]
    fn large_capacity_bound_check() {
        let inst = simple_instance(); // B = 4, m = 2, ln 2 ≈ 0.69
        assert!(inst.meets_large_capacity_bound(0.5)); // needs B >= 2.77
        assert!(!inst.meets_large_capacity_bound(0.1)); // needs B >= 69
        let eps = inst.min_supported_epsilon();
        assert!(inst.meets_large_capacity_bound(eps + 1e-9));
        assert!(!inst.meets_large_capacity_bound(eps - 1e-3));
    }

    #[test]
    fn commodity_conversion() {
        let inst = simple_instance();
        let c = inst.to_commodities();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].demand, 1.0);
        assert_eq!(c[1].value, 1.0);
    }

    #[test]
    fn declared_type_probe() {
        let inst = simple_instance();
        let probed = inst.with_declared_type(RequestId(0), 0.25, 9.0);
        assert_eq!(probed.request(RequestId(0)).demand, 0.25);
        assert_eq!(probed.request(RequestId(0)).value, 9.0);
        // original untouched
        assert_eq!(inst.request(RequestId(0)).demand, 1.0);
    }

    #[test]
    fn without_request_shrinks() {
        let inst = simple_instance();
        let smaller = inst.without_request(RequestId(0));
        assert_eq!(smaller.num_requests(), 1);
        assert_eq!(smaller.request(RequestId(0)).demand, 0.5);
    }

    #[test]
    fn counterfactual_probes_share_the_graph() {
        // Zero-copy contract: every instance derived from this one must
        // point at the same Graph allocation, not a deep copy.
        let inst = simple_instance();
        let probed = inst.with_declared_type(RequestId(0), 0.25, 9.0);
        assert!(std::ptr::eq(inst.graph(), probed.graph()));
        let smaller = inst.without_request(RequestId(0));
        assert!(std::ptr::eq(inst.graph(), smaller.graph()));
        let cloned = inst.clone();
        assert!(std::ptr::eq(inst.graph(), cloned.graph()));
        let shared = UfpInstance::from_shared(Arc::clone(inst.shared_graph()), vec![]);
        assert!(std::ptr::eq(inst.graph(), shared.graph()));
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_rejected() {
        let g = GraphBuilder::directed(2).build();
        UfpInstance::new(g, vec![Request::new(NodeId(0), NodeId(5), 1.0, 1.0)]);
    }
}
