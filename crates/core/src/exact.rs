//! Exact integral optimum by branch-and-bound — ground truth for small
//! instances.
//!
//! Used by the integrality-gap experiment (E12) and by tests that verify
//! the known optima of the paper's lower-bound constructions. Exponential
//! in the worst case; intended for instances with ≲ 20 requests and small
//! path sets (the adversarial graphs qualify: their simple-path sets are
//! tiny and structured).

use ufp_netgraph::enumerate::simple_paths;
use ufp_netgraph::path::Path;

use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::solution::UfpSolution;

/// Configuration for the exact solver.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Hop cap for path enumeration.
    pub max_hops: usize,
    /// Cap on candidate paths per request. If any request hits the cap the
    /// result is still a valid lower bound but may not be optimal; the
    /// solver reports this through [`ExactResult::exhaustive`].
    pub max_paths_per_request: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_hops: usize::MAX,
            max_paths_per_request: 1000,
        }
    }
}

/// Result of [`exact_optimum`].
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The best integral solution found.
    pub solution: UfpSolution,
    /// Its value.
    pub value: f64,
    /// True when no enumeration cap was hit, i.e. the value is the true
    /// optimum.
    pub exhaustive: bool,
}

/// Compute the optimal integral allocation by branch-and-bound over
/// (request → path | reject) assignments.
pub fn exact_optimum(instance: &UfpInstance, config: &ExactConfig) -> ExactResult {
    let graph = instance.graph();
    // Enumerate candidates once per request, against full capacity (the
    // residual check happens during search).
    let mut exhaustive = true;
    let mut candidates: Vec<(RequestId, Vec<Path>)> = instance
        .request_ids()
        .map(|rid| {
            let req = instance.request(rid);
            let paths = simple_paths(
                graph,
                req.src,
                req.dst,
                config.max_hops,
                config.max_paths_per_request,
                |e| graph.capacity(e) >= req.demand - 1e-12,
            );
            if paths.len() >= config.max_paths_per_request {
                exhaustive = false;
            }
            (rid, paths)
        })
        .collect();

    // Order by descending value for stronger pruning.
    candidates.sort_by(|a, b| {
        let (va, vb) = (instance.request(a.0).value, instance.request(b.0).value);
        vb.partial_cmp(&va).unwrap().then_with(|| a.0.cmp(&b.0))
    });

    // Suffix sums of values: the best any suffix could add.
    let mut suffix = vec![0.0f64; candidates.len() + 1];
    for i in (0..candidates.len()).rev() {
        suffix[i] = suffix[i + 1] + instance.request(candidates[i].0).value;
    }

    struct Search<'a> {
        instance: &'a UfpInstance,
        candidates: &'a [(RequestId, Vec<Path>)],
        suffix: &'a [f64],
        residual: Vec<f64>,
        chosen: Vec<(RequestId, usize)>,
        best_value: f64,
        best: Vec<(RequestId, usize)>,
    }

    impl Search<'_> {
        fn go(&mut self, depth: usize, value: f64) {
            if value > self.best_value {
                self.best_value = value;
                self.best = self.chosen.clone();
            }
            if depth == self.candidates.len() {
                return;
            }
            if value + self.suffix[depth] <= self.best_value + 1e-12 {
                return; // even taking everything left cannot improve
            }
            let (rid, paths) = &self.candidates[depth];
            let req = self.instance.request(*rid);
            for (pi, path) in paths.iter().enumerate() {
                let fits = path
                    .edges()
                    .iter()
                    .all(|e| self.residual[e.index()] >= req.demand - 1e-12);
                if !fits {
                    continue;
                }
                for &e in path.edges() {
                    self.residual[e.index()] -= req.demand;
                }
                self.chosen.push((*rid, pi));
                self.go(depth + 1, value + req.value);
                self.chosen.pop();
                for &e in path.edges() {
                    self.residual[e.index()] += req.demand;
                }
            }
            // Reject branch.
            self.go(depth + 1, value);
        }
    }

    let mut search = Search {
        instance,
        candidates: &candidates,
        suffix: &suffix,
        residual: graph.edges().iter().map(|e| e.capacity).collect(),
        chosen: Vec::new(),
        best_value: 0.0,
        best: Vec::new(),
    };
    search.go(0, 0.0);

    let routed = search
        .best
        .iter()
        .map(|&(rid, pi)| {
            let idx = candidates.iter().position(|(r, _)| *r == rid).unwrap();
            (rid, candidates[idx].1[pi].clone())
        })
        .collect();
    let solution = UfpSolution { routed };
    let value = solution.value(instance);
    ExactResult {
        solution,
        value,
        exhaustive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn picks_the_optimal_subset() {
        // Capacity 2: best pair is the two value-3 requests, not value-5
        // alone plus value-1.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 2.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 5.0),
                Request::new(n(0), n(1), 1.0, 3.0),
                Request::new(n(0), n(1), 1.0, 3.0),
            ],
        );
        let res = exact_optimum(&inst, &ExactConfig::default());
        assert_eq!(res.value, 8.0);
        assert!(res.exhaustive);
        assert!(res.solution.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn exploits_alternate_paths() {
        // Diamond with unit capacities: both requests fit via disjoint
        // paths; a single-path solver would route only one.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 1.0);
        gb.add_edge(n(1), n(3), 1.0);
        gb.add_edge(n(0), n(2), 1.0);
        gb.add_edge(n(2), n(3), 1.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(3), 1.0, 1.0),
                Request::new(n(0), n(3), 1.0, 1.0),
            ],
        );
        let res = exact_optimum(&inst, &ExactConfig::default());
        assert_eq!(res.value, 2.0);
    }

    #[test]
    fn rejects_oversized_demands() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 0.5);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 10.0)]);
        let res = exact_optimum(&inst, &ExactConfig::default());
        assert_eq!(res.value, 0.0);
        assert!(res.solution.is_empty());
    }

    #[test]
    fn beats_or_matches_every_heuristic() {
        use crate::baselines::{greedy, GreedyOrder};
        use crate::bounded_ufp::{bounded_ufp, BoundedUfpConfig};
        let mut gb = GraphBuilder::directed(5);
        gb.add_edge(n(0), n(1), 2.0);
        gb.add_edge(n(1), n(4), 2.0);
        gb.add_edge(n(0), n(2), 2.0);
        gb.add_edge(n(2), n(4), 2.0);
        gb.add_edge(n(0), n(3), 2.0);
        gb.add_edge(n(3), n(4), 2.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..8)
                .map(|i| Request::new(n(0), n(4), 1.0, 1.0 + (i as f64) * 0.3))
                .collect(),
        );
        let exact = exact_optimum(&inst, &ExactConfig::default());
        let g = greedy(&inst, GreedyOrder::ByValue).value(&inst);
        let a = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5))
            .solution
            .value(&inst);
        assert!(exact.value >= g - 1e-9);
        assert!(exact.value >= a - 1e-9);
        // top 6 of the 8 values 1.0 + 0.3·i, i.e. i = 2..7
        let expected = 6.0 * 1.0 + (2.0 + 3.0 + 4.0 + 5.0 + 6.0 + 7.0) * 0.3;
        assert!(
            (exact.value - expected).abs() < 1e-9,
            "{} vs {expected}",
            exact.value
        );
    }
}
