//! Solutions: request → path assignments, with feasibility checking.

use ufp_netgraph::path::Path;

use crate::instance::UfpInstance;
use crate::request::RequestId;

/// A (partial) allocation: routed requests with their paths. For the
/// repetitions problem the same request may appear multiple times; plain
/// UFP solutions must be duplicate-free (checked by
/// [`UfpSolution::check_feasible`]).
#[derive(Clone, Debug, Default)]
pub struct UfpSolution {
    /// `(request, path)` pairs in allocation order — the paper's `W`.
    pub routed: Vec<(RequestId, Path)>,
}

/// Feasibility violations detected by [`UfpSolution::check_feasible`].
#[derive(Clone, Debug, PartialEq)]
pub enum FeasibilityError {
    /// The same request is routed twice (only legal with repetitions).
    DuplicateRequest(RequestId),
    /// A path is not a valid simple path of the instance graph.
    InvalidPath(RequestId),
    /// A path does not connect the request's terminals.
    WrongTerminals(RequestId),
    /// Total demand through an edge exceeds its capacity.
    CapacityExceeded {
        /// Index of the overloaded edge.
        edge: usize,
        /// Load routed through it.
        load: f64,
        /// Its capacity.
        capacity: f64,
    },
}

impl std::fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeasibilityError::DuplicateRequest(r) => write!(f, "request {r} routed twice"),
            FeasibilityError::InvalidPath(r) => write!(f, "request {r} has an invalid path"),
            FeasibilityError::WrongTerminals(r) => {
                write!(f, "request {r}'s path misses its terminals")
            }
            FeasibilityError::CapacityExceeded {
                edge,
                load,
                capacity,
            } => write!(f, "edge {edge} overloaded: {load} > {capacity}"),
        }
    }
}

impl std::error::Error for FeasibilityError {}

impl UfpSolution {
    /// Empty solution.
    pub fn empty() -> Self {
        UfpSolution { routed: Vec::new() }
    }

    /// Total value of routed requests (counting multiplicity).
    pub fn value(&self, instance: &UfpInstance) -> f64 {
        self.routed
            .iter()
            .map(|(r, _)| instance.request(*r).value)
            .sum()
    }

    /// Number of routed (request, path) pairs.
    pub fn len(&self) -> usize {
        self.routed.len()
    }

    /// True when nothing is routed.
    pub fn is_empty(&self) -> bool {
        self.routed.is_empty()
    }

    /// Whether `id` is routed at least once.
    pub fn contains(&self, id: RequestId) -> bool {
        self.routed.iter().any(|(r, _)| *r == id)
    }

    /// Demand routed through every edge.
    pub fn edge_loads(&self, instance: &UfpInstance) -> Vec<f64> {
        let mut loads = vec![0.0; instance.graph().num_edges()];
        for (r, path) in &self.routed {
            let d = instance.request(*r).demand;
            for e in path.edges() {
                loads[e.index()] += d;
            }
        }
        loads
    }

    /// Fraction of total capacity used, per edge (diagnostics/plots).
    pub fn edge_utilization(&self, instance: &UfpInstance) -> Vec<f64> {
        self.edge_loads(instance)
            .iter()
            .enumerate()
            .map(|(e, &l)| l / instance.graph().edges()[e].capacity)
            .collect()
    }

    /// Full feasibility check: path validity, terminal endpoints,
    /// capacity constraints, and (unless `allow_repetitions`) uniqueness.
    pub fn check_feasible(
        &self,
        instance: &UfpInstance,
        allow_repetitions: bool,
    ) -> Result<(), FeasibilityError> {
        let mut seen = vec![false; instance.num_requests()];
        for (rid, path) in &self.routed {
            let req = instance.request(*rid);
            if !allow_repetitions {
                if seen[rid.index()] {
                    return Err(FeasibilityError::DuplicateRequest(*rid));
                }
                seen[rid.index()] = true;
            }
            if path.validate(instance.graph()).is_err() {
                return Err(FeasibilityError::InvalidPath(*rid));
            }
            if path.source() != req.src || path.target() != req.dst {
                return Err(FeasibilityError::WrongTerminals(*rid));
            }
        }
        let loads = self.edge_loads(instance);
        for (e, &load) in loads.iter().enumerate() {
            let capacity = instance.graph().edges()[e].capacity;
            if load > capacity + 1e-9 {
                return Err(FeasibilityError::CapacityExceeded {
                    edge: e,
                    load,
                    capacity,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::{EdgeId, NodeId};

    fn two_edge_instance() -> UfpInstance {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 1.0);
        let g = b.build();
        UfpInstance::new(
            g,
            vec![
                Request::new(NodeId(0), NodeId(2), 1.0, 5.0),
                Request::new(NodeId(0), NodeId(1), 1.0, 2.0),
            ],
        )
    }

    fn full_path() -> Path {
        Path::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![EdgeId(0), EdgeId(1)],
        )
    }

    #[test]
    fn value_and_loads() {
        let inst = two_edge_instance();
        let sol = UfpSolution {
            routed: vec![(RequestId(0), full_path())],
        };
        assert_eq!(sol.value(&inst), 5.0);
        assert_eq!(sol.edge_loads(&inst), vec![1.0, 1.0]);
        assert_eq!(sol.edge_utilization(&inst), vec![1.0, 1.0]);
        assert!(sol.check_feasible(&inst, false).is_ok());
        assert!(sol.contains(RequestId(0)));
        assert!(!sol.contains(RequestId(1)));
    }

    #[test]
    fn capacity_violation_detected() {
        let inst = two_edge_instance();
        let short = Path::new(vec![NodeId(0), NodeId(1)], vec![EdgeId(0)]);
        let sol = UfpSolution {
            routed: vec![(RequestId(0), full_path()), (RequestId(1), short)],
        };
        match sol.check_feasible(&inst, false) {
            Err(FeasibilityError::CapacityExceeded { edge: 0, .. }) => {}
            other => panic!("expected capacity violation, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_detected_unless_repetitions() {
        let inst = {
            // widen capacities so only duplication is at issue
            let mut b = GraphBuilder::directed(3);
            b.add_edge(NodeId(0), NodeId(1), 5.0);
            b.add_edge(NodeId(1), NodeId(2), 5.0);
            UfpInstance::new(
                b.build(),
                vec![Request::new(NodeId(0), NodeId(2), 1.0, 5.0)],
            )
        };
        let sol = UfpSolution {
            routed: vec![(RequestId(0), full_path()), (RequestId(0), full_path())],
        };
        assert_eq!(
            sol.check_feasible(&inst, false),
            Err(FeasibilityError::DuplicateRequest(RequestId(0)))
        );
        assert!(sol.check_feasible(&inst, true).is_ok());
        assert_eq!(sol.value(&inst), 10.0);
    }

    #[test]
    fn wrong_terminals_detected() {
        let inst = two_edge_instance();
        let short = Path::new(vec![NodeId(0), NodeId(1)], vec![EdgeId(0)]);
        let sol = UfpSolution {
            routed: vec![(RequestId(0), short)],
        };
        assert_eq!(
            sol.check_feasible(&inst, false),
            Err(FeasibilityError::WrongTerminals(RequestId(0)))
        );
    }

    #[test]
    fn invalid_path_detected() {
        let inst = two_edge_instance();
        let bogus = Path::new(vec![NodeId(0), NodeId(2)], vec![EdgeId(1)]);
        let sol = UfpSolution {
            routed: vec![(RequestId(0), bogus)],
        };
        assert_eq!(
            sol.check_feasible(&inst, false),
            Err(FeasibilityError::InvalidPath(RequestId(0)))
        );
    }

    #[test]
    fn empty_solution_is_feasible() {
        let inst = two_edge_instance();
        let sol = UfpSolution::empty();
        assert!(sol.check_feasible(&inst, false).is_ok());
        assert_eq!(sol.value(&inst), 0.0);
        assert!(sol.is_empty());
        assert_eq!(sol.len(), 0);
    }
}
