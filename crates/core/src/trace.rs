//! Iteration traces and the dual certificate of Claim 3.6.
//!
//! Lines 2, 3 and 12 of Algorithm 1 maintain the primal/dual bookkeeping
//! (`x_s`, `z_r`) that the paper says is "not regarded part of the
//! algorithm" but drives its analysis. We keep exactly that bookkeeping as
//! a trace: per iteration `i`, the normalized length `α(i)` of the
//! selected path, the dual mass `D₁(i) = Σ c_e y_e`, and the routed value
//! `P(i) = D₂(i)`. Claim 3.6 states that `(y^i·α(i)^{-1}, z^i)` is dual
//! feasible, so
//!
//! ```text
//! OPT ≤ D ≤ D₁(i)/α(i) + D₂(i)        for every iteration i,
//! ```
//!
//! and the minimum over iterations is a **certified upper bound** on the
//! optimum that every experiment can compare against without solving an
//! LP. Logarithms are stored because `D₁` and `α` individually overflow
//! `f64` for small ε; their ratio is well-scaled.

use crate::request::RequestId;

/// Why the main loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every request was routed (`L = ∅`) — the solution is optimal.
    Exhausted,
    /// The dual guard tripped: `Σ c_e y_e > e^{ε(B−1)}`.
    Guard,
    /// No remaining request has a usable path (disconnected terminals, or
    /// no residual-feasible path in residual mode).
    NoPath,
    /// Iteration cap hit (only possible for the repetitions variant).
    IterationCap,
}

/// Analysis bookkeeping for one iteration.
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord {
    /// The request selected in this iteration (the paper's `r̂`).
    pub selected: RequestId,
    /// `ln α(i)` — log of the normalized length of the selected path,
    /// measured in the state *before* this iteration's weight update.
    pub ln_alpha: f64,
    /// `ln D₁(i)` — log of `Σ c_e y_e` before the update.
    pub ln_d1: f64,
    /// `P(i) = D₂(i)` — value routed before this iteration.
    pub routed_value_before: f64,
}

impl IterationRecord {
    /// The Claim 3.6 upper bound contributed by this iteration:
    /// `D₁(i)/α(i) + D₂(i)`.
    pub fn dual_candidate(&self) -> f64 {
        (self.ln_d1 - self.ln_alpha).exp() + self.routed_value_before
    }
}

/// Which dual certificate a trace carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Claim 3.6 (plain UFP): `D ≤ D₁(i)/α(i) + D₂(i)`.
    Claim36,
    /// Claim 5.2 (repetitions): `D ≤ D(i)/α(i)` (no `z` terms).
    Claim52,
    /// No valid certificate (e.g. residual-restricted path selection,
    /// which can inflate `α(i)` past the claim's premise).
    None,
}

/// Full run trace.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// One record per iteration, in execution order.
    pub records: Vec<IterationRecord>,
    /// `ln` of the stop threshold `e^{ε(B−1)}`, i.e. `ε(B−1)`.
    pub ln_guard_threshold: f64,
    /// How the loop ended.
    pub stop_reason: StopReason,
    /// Which upper-bound certificate applies to this run.
    pub certificate: Certificate,
}

impl RunTrace {
    /// Certified upper bound on the optimum: `min_i D₁(i)/α(i) + D₂(i)`
    /// (Claim 3.6) or `min_i D(i)/α(i)` (Claim 5.2). `None` when no
    /// certificate applies or no iteration ran.
    pub fn dual_upper_bound(&self) -> Option<f64> {
        let best = match self.certificate {
            Certificate::None => return None,
            Certificate::Claim36 => self
                .records
                .iter()
                .map(IterationRecord::dual_candidate)
                .fold(f64::INFINITY, f64::min),
            Certificate::Claim52 => self
                .records
                .iter()
                .map(|r| (r.ln_d1 - r.ln_alpha).exp())
                .fold(f64::INFINITY, f64::min),
        };
        best.is_finite().then_some(best)
    }

    /// Number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ln_alpha: f64, ln_d1: f64, p: f64) -> IterationRecord {
        IterationRecord {
            selected: RequestId(0),
            ln_alpha,
            ln_d1,
            routed_value_before: p,
        }
    }

    #[test]
    fn dual_candidate_formula() {
        // D1 = e^2, alpha = e^0 => candidate = e^2 + 5
        let r = record(0.0, 2.0, 5.0);
        assert!((r.dual_candidate() - (2.0f64.exp() + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn bound_is_minimum_over_iterations() {
        let trace = RunTrace {
            records: vec![
                record(0.0, 3.0, 0.0),
                record(1.0, 2.0, 4.0),
                record(0.0, 5.0, 1.0),
            ],
            ln_guard_threshold: 10.0,
            stop_reason: StopReason::Guard,
            certificate: Certificate::Claim36,
        };
        let expected = (2.0f64 - 1.0).exp() + 4.0; // middle record: e^1 + 4 ≈ 6.72
        assert!((trace.dual_upper_bound().unwrap() - expected).abs() < 1e-9);
        assert_eq!(trace.iterations(), 3);
    }

    #[test]
    fn invalid_certificate_gives_none() {
        let trace = RunTrace {
            records: vec![record(0.0, 1.0, 0.0)],
            ln_guard_threshold: 1.0,
            stop_reason: StopReason::Exhausted,
            certificate: Certificate::None,
        };
        assert!(trace.dual_upper_bound().is_none());
    }

    #[test]
    fn claim52_certificate_drops_z_terms() {
        let trace = RunTrace {
            records: vec![record(0.0, 2.0, 100.0)],
            ln_guard_threshold: 1.0,
            stop_reason: StopReason::Guard,
            certificate: Certificate::Claim52,
        };
        // bound = e^2, ignoring the routed value 100
        assert!((trace.dual_upper_bound().unwrap() - 2.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_gives_none() {
        let trace = RunTrace {
            records: vec![],
            ln_guard_threshold: 1.0,
            stop_reason: StopReason::Exhausted,
            certificate: Certificate::Claim36,
        };
        assert!(trace.dual_upper_bound().is_none());
    }

    #[test]
    fn huge_logs_do_not_overflow() {
        // D1 and alpha each around e^5000; their ratio is e^2.
        let r = record(4998.0, 5000.0, 1.0);
        assert!((r.dual_candidate() - (2.0f64.exp() + 1.0)).abs() < 1e-9);
    }
}
