//! # ufp-core
//!
//! The primary contribution of *"Truthful Unsplittable Flow for Large
//! Capacity Networks"* (Azar, Gamzu, Gutner; SPAA 2007), implemented as a
//! library:
//!
//! * [`bounded_ufp()`] — Algorithm 1, the monotone deterministic
//!   primal–dual `((1+ε)·e/(e−1))`-approximation for the
//!   `Ω(ln m / ε²)`-bounded unsplittable flow problem (Theorem 3.1).
//! * [`repeat`] — Algorithm 3, the `(1+ε)`-approximation for the
//!   repetitions variant (Theorem 5.1).
//! * [`reasonable`] — the family of *reasonable iterative path-minimizing
//!   algorithms* (Definitions 3.9/3.10) as a pluggable engine, used to
//!   reproduce the `e/(e−1)` and `4/3` lower bounds (Theorems 3.11/3.12).
//! * [`baselines`] — the comparators: the previous best truthful
//!   algorithm (Briest et al., ratio → e), greedy heuristics, and
//!   non-monotone randomized rounding.
//! * [`exact`] — branch-and-bound ground truth for small instances.
//! * [`trace`] — per-run dual certificates (Claims 3.6 / 5.2): every run
//!   carries a proven upper bound on the optimum it was measured against.
//!
//! Instances are [`instance::UfpInstance`]s over [`ufp_netgraph`] graphs
//! (held behind an `Arc`, so counterfactual clones share the network);
//! monotonicity-based truthfulness (Theorem 2.3) is layered on top by the
//! `ufp-mechanism` crate.
//!
//! ## Prefix-resumed runs
//!
//! Critical-value pricing probes an allocator with one agent's declared
//! value lowered, `O(log 1/tol)` times per winner. By Lemma 3.4's
//! monotonicity, lowering a value cannot change any selection made
//! *before* the step that selected that agent — so a probe never needs
//! to re-run the prefix. [`bounded_ufp_epoch_traced`] records a per-step
//! [`EpochResumeTrace`] during the real run;
//! [`EpochResumeTrace::checkpoint`] rebuilds the exact state after any
//! prefix (pure arithmetic replay, bit-identical, no shortest-path
//! work); [`bounded_ufp_epoch_resume`] completes a run from a
//! checkpoint, and [`bounded_ufp_epoch_resume_watch`] additionally
//! early-exits the moment the probed agent is selected — returning a
//! *deeper* checkpoint that later (lower-valued) probes of the same
//! agent can resume from. Each bisection probe thus costs `O(suffix)`
//! instead of `O(full run)`, with the suffix shrinking as the bracket
//! tightens.

pub mod baselines;
pub mod bounded_ufp;
pub mod exact;
pub mod instance;
pub mod reasonable;
pub mod repeat;
pub mod request;
pub mod selection;
pub mod solution;
pub mod trace;
pub mod weights;

pub use bounded_ufp::{
    bounded_ufp, bounded_ufp_epoch, bounded_ufp_epoch_resume, bounded_ufp_epoch_resume_watch,
    bounded_ufp_epoch_traced, BoundedUfpConfig, EpochCheckpoint, EpochContext, EpochOutcome,
    EpochResumeTrace, TraceStep, UfpRunResult,
};
pub use exact::{exact_optimum, ExactConfig, ExactResult};
pub use instance::UfpInstance;
pub use reasonable::{
    iterative_path_minimizer, EngineConfig, EngineResult, HopScore, LengthBiasedScore, PathScore,
    PrimalDualScore, ProductScore, ScoreCtx, TieBreak,
};
pub use repeat::{bounded_ufp_repeat, RepeatConfig, RepeatRunResult};
pub use request::{Request, RequestId};
pub use selection::SelectionStrategy;
pub use solution::{FeasibilityError, UfpSolution};
pub use trace::{Certificate, IterationRecord, RunTrace, StopReason};
pub use weights::{DualWeights, DualWeightsState};
