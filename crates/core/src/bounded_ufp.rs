//! Algorithm 1 — `Bounded-UFP(ε)`: the paper's monotone deterministic
//! primal–dual algorithm for the `Ω(ln m / ε²)`-bounded unsplittable flow
//! problem, with approximation ratio approaching `e/(e−1)` (Theorem 3.1).
//!
//! Faithful to the paper's pseudocode:
//!
//! 1. `y_e ← 1/c_e` for every edge.
//! 2. While requests remain and `Σ c_e y_e ≤ e^{ε(B−1)}`:
//!    a. for every unrouted request `r`, find the shortest `s_r → t_r`
//!    path `p_r` under weights `y`;
//!    b. select `r̂` minimizing the *normalized length*
//!    `(d_r / v_r)·|p_r|` (ties broken by request id — any fixed rule
//!    preserves monotonicity);
//!    c. multiply `y_e ← y_e · e^{εB d_{r̂} / c_e}` along `p_{r̂}`;
//!    d. route `r̂` on `p_{r̂}`.
//!
//! Production details beyond the pseudocode (see DESIGN.md §4):
//! log-space weights so small ε cannot overflow, per-iteration parallel
//! shortest-path fan-out grouped by source vertex, and the Claim 3.6 dual
//! certificate recorded per iteration so every run carries a certified
//! bound on its own approximation ratio.

use ufp_netgraph::dijkstra::{Dijkstra, Targets};
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::path::Path;
use ufp_par::Pool;

use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::solution::UfpSolution;
use crate::trace::{Certificate, IterationRecord, RunTrace, StopReason};
use crate::weights::DualWeights;

/// Configuration for [`bounded_ufp`].
#[derive(Clone, Debug)]
pub struct BoundedUfpConfig {
    /// Accuracy parameter ε ∈ (0, 1]. Theorem 3.1 calls the algorithm
    /// with `ε/6` to obtain a `(1+ε)·e/(e−1)` guarantee when
    /// `B ≥ ln(m)/ε²`.
    pub epsilon: f64,
    /// Parallelism for the per-iteration shortest-path fan-out.
    pub pool: Pool,
    /// Extension (not in the paper): restrict path search to edges with
    /// residual capacity ≥ the request's demand. Feasibility then holds
    /// by construction instead of by the guard, but the Claim 3.6 dual
    /// certificate no longer applies (`α` may be inflated). Monotonicity
    /// is preserved: lowering one's demand only enlarges one's own path
    /// set. Used by the E10/E11 ablations.
    pub respect_residual: bool,
}

impl Default for BoundedUfpConfig {
    fn default() -> Self {
        BoundedUfpConfig {
            epsilon: 0.1,
            pool: Pool::sequential(),
            respect_residual: false,
        }
    }
}

impl BoundedUfpConfig {
    /// Paper-faithful configuration with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must lie in (0, 1], got {epsilon}"
        );
        BoundedUfpConfig {
            epsilon,
            ..Default::default()
        }
    }

    /// Same configuration with a parallel pool.
    pub fn parallel(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }
}

/// Result of a [`bounded_ufp`] run.
#[derive(Clone, Debug)]
pub struct UfpRunResult {
    /// The allocation `W`.
    pub solution: UfpSolution,
    /// Analysis trace (α, D₁, P per iteration) and stop reason.
    pub trace: RunTrace,
}

impl UfpRunResult {
    /// Certified upper bound on OPT via Claim 3.6, if applicable.
    pub fn dual_upper_bound(&self) -> Option<f64> {
        self.trace.dual_upper_bound()
    }

    /// Certified upper bound on OPT, tightened with the trivial bound
    /// `OPT ≤ Σ_r v_r` (which is what makes exhausted runs — the paper's
    /// "if L = ∅ the output is optimal" case — certify ratio 1).
    pub fn tight_upper_bound(&self, instance: &UfpInstance) -> Option<f64> {
        self.dual_upper_bound()
            .map(|d| d.min(instance.total_value()))
    }

    /// Certified approximation ratio `bound / value` (≥ 1 up to fp noise).
    pub fn certified_ratio(&self, instance: &UfpInstance) -> Option<f64> {
        let v = self.solution.value(instance);
        if v <= 0.0 {
            return None;
        }
        self.tight_upper_bound(instance).map(|d| d / v)
    }
}

/// Per-request shortest-path query result within one iteration.
struct PathFinding {
    request: RequestId,
    /// Distance in *materialized* (shifted) weight scale.
    dist: f64,
    path: Path,
}

/// Residual-epoch inputs that let `ufp-engine` reuse Algorithm 1
/// incrementally across streaming batches. All three slices are indexed
/// by edge id of the instance graph.
///
/// With a trivial context (full capacities, everything usable, zero
/// carry) the epoch run produces the identical allocation — same
/// selection order, same paths, bit-identical trace records — as the
/// one-shot [`bounded_ufp`]; the engine/offline equivalence tests rely
/// on that. The only difference: epoch runs never carry a Claim 3.6
/// certificate (`dual_upper_bound()` is `None`), because the claim's
/// premise does not survive masked edges or carried weights.
#[derive(Clone, Copy, Debug)]
pub struct EpochContext<'a> {
    /// Effective (residual) capacity per edge; replaces `c_e` in the
    /// weight initialization, the guard bound `B`, and the line-10
    /// exponent.
    pub capacities: &'a [f64],
    /// Edges admissible this epoch. Unusable (saturated) edges are
    /// excluded from path search, from `B`, and from the guard sum `D₁`.
    pub usable: &'a [bool],
    /// Carried ln-space dual exponents from earlier epochs:
    /// `y_e` starts at `e^{carry_e}/c_e` instead of `1/c_e`, preserving
    /// congestion memory across batches.
    pub carry: &'a [f64],
}

/// Result of a [`bounded_ufp_epoch`] run: the ordinary run result plus
/// the carried-forward dual exponents (input carry + this epoch's
/// line-10 bumps).
#[derive(Clone, Debug)]
pub struct EpochOutcome {
    /// Allocation and trace, exactly as from [`bounded_ufp`].
    pub run: UfpRunResult,
    /// `carry_in + Σ bumps` per edge — hand this to the next epoch.
    /// Empty for context-free (one-shot) runs, which have no next epoch;
    /// tracking it there would tax every `critical_value` probe.
    pub carry: Vec<f64>,
}

/// Run Algorithm 1. The instance must be normalized (`d_r ∈ (0,1]`).
pub fn bounded_ufp(instance: &UfpInstance, config: &BoundedUfpConfig) -> UfpRunResult {
    bounded_ufp_epoch(instance, config, None).run
}

/// Run Algorithm 1 over one epoch of a long-lived network. `ctx` carries
/// the residual state; `None` reproduces the one-shot behavior exactly.
///
/// Per-epoch feasibility: with `B = min` *usable* residual capacity, the
/// Lemma 3.3 argument gives load `≤ c_e(B−1)/B + d ≤ c_e` on every edge
/// whenever every admitted demand satisfies `d ≤ c_e/B`, which holds for
/// normalized demands as long as unusable edges are exactly those with
/// residual below the caller's floor `≥ 1`. The streaming engine keeps
/// cumulative feasibility by induction over epochs.
pub fn bounded_ufp_epoch(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
) -> EpochOutcome {
    assert!(
        instance.is_normalized(),
        "Bounded-UFP requires a normalized instance (demands in (0,1]); \
         call UfpInstance::normalized() first"
    );
    assert!(
        config.epsilon > 0.0 && config.epsilon <= 1.0,
        "epsilon must lie in (0, 1]"
    );
    let graph = instance.graph();
    let eps = config.epsilon;
    let b = match ctx {
        None => graph.min_capacity(),
        Some(c) => {
            assert_eq!(c.capacities.len(), graph.num_edges());
            assert_eq!(c.usable.len(), graph.num_edges());
            assert_eq!(c.carry.len(), graph.num_edges());
            c.capacities
                .iter()
                .zip(c.usable)
                .filter(|&(_, &u)| u)
                .map(|(&cap, _)| cap)
                .fold(f64::INFINITY, f64::min)
        }
    };
    let ln_guard = eps * (b - 1.0);
    let usable = ctx.map(|c| c.usable);

    let mut weights = match ctx {
        None => DualWeights::new(graph),
        Some(c) => DualWeights::with_context(c.capacities, c.usable, c.carry),
    };
    let mut carry: Option<Vec<f64>> = ctx.map(|c| c.carry.to_vec());
    let mut remaining: Vec<RequestId> = instance.request_ids().collect();
    let mut residual: Vec<f64> = match ctx {
        None => graph.edges().iter().map(|e| e.capacity).collect(),
        Some(c) => c.capacities.to_vec(),
    };
    let mut solution = UfpSolution::empty();
    let mut routed_value = 0.0f64;
    let mut records: Vec<IterationRecord> = Vec::with_capacity(remaining.len());

    let stop_reason = loop {
        if remaining.is_empty() {
            break StopReason::Exhausted;
        }
        let ln_d1 = weights.ln_dual_sum();
        if ln_d1 > ln_guard {
            break StopReason::Guard;
        }

        let findings = if config.respect_residual {
            shortest_paths_residual(
                instance,
                &remaining,
                &weights,
                &residual,
                usable,
                &config.pool,
            )
        } else {
            shortest_paths_grouped(instance, &remaining, &weights, usable, &config.pool)
        };

        // Select r̂ minimizing (d/v)·|p| — deterministic tie-break on
        // request id (findings are in ascending id order within each
        // group and groups are sorted, and `<` keeps the first minimum).
        let mut best: Option<(f64, usize)> = None;
        for (i, f) in findings.iter().enumerate() {
            let score = instance.request(f.request).density() * f.dist;
            let better = match best {
                None => true,
                Some((bs, bi)) => score < bs || (score == bs && f.request < findings[bi].request),
            };
            if better {
                best = Some((score, i));
            }
        }
        let Some((score, idx)) = best else {
            break StopReason::NoPath;
        };
        let chosen = &findings[idx];
        let req = *instance.request(chosen.request);

        // Claim 3.6 bookkeeping: α(i) in log space (shift restores the
        // true scale of the materialized distance).
        let ln_alpha = if score > 0.0 {
            score.ln() + weights.shift()
        } else {
            f64::NEG_INFINITY
        };
        records.push(IterationRecord {
            selected: chosen.request,
            ln_alpha,
            ln_d1,
            routed_value_before: routed_value,
        });

        // Line 10: y_e ← y_e · e^{εB d / c_e} along the chosen path.
        for &e in chosen.path.edges() {
            let c = weights.capacity(e);
            let exponent = eps * b * req.demand / c;
            weights.bump(e, exponent);
            if let Some(k) = carry.as_mut() {
                k[e.index()] += exponent;
            }
            residual[e.index()] -= req.demand;
        }

        routed_value += req.value;
        solution.routed.push((chosen.request, chosen.path.clone()));
        remaining.retain(|r| *r != chosen.request);
    };

    let trace = RunTrace {
        records,
        ln_guard_threshold: ln_guard,
        stop_reason,
        certificate: if config.respect_residual || ctx.is_some() {
            Certificate::None
        } else {
            Certificate::Claim36
        },
    };
    EpochOutcome {
        run: UfpRunResult { solution, trace },
        carry: carry.unwrap_or_default(),
    }
}

/// Shortest paths for all remaining requests, one Dijkstra per *distinct
/// source* (requests sharing a source reuse the tree), fanned out over the
/// pool. Results are flattened in (source-group, request) order, which is
/// ascending request id within groups.
fn shortest_paths_grouped(
    instance: &UfpInstance,
    remaining: &[RequestId],
    weights: &DualWeights,
    usable: Option<&[bool]>,
    pool: &Pool,
) -> Vec<PathFinding> {
    let graph = instance.graph();
    // Group by source, deterministically.
    let mut sorted: Vec<RequestId> = remaining.to_vec();
    sorted.sort_unstable_by_key(|r| (instance.request(*r).src, *r));
    let mut groups: Vec<(NodeId, Vec<RequestId>)> = Vec::new();
    for r in sorted {
        let src = instance.request(r).src;
        match groups.last_mut() {
            Some((s, members)) if *s == src => members.push(r),
            _ => groups.push((src, vec![r])),
        }
    }

    let w = weights.weights();
    let per_group: Vec<Vec<PathFinding>> = pool.map_with(
        &groups,
        || Dijkstra::new(graph.num_nodes()),
        |dij, _, (src, members)| {
            let targets: Vec<NodeId> = members.iter().map(|r| instance.request(*r).dst).collect();
            dij.run(graph, w, *src, Targets::Set(&targets), |e| {
                usable.is_none_or(|u| u[e.index()])
            });
            members
                .iter()
                .filter_map(|&r| {
                    let dst = instance.request(r).dst;
                    let dist = dij.distance(dst)?;
                    let path = dij.path_to(dst)?;
                    Some(PathFinding {
                        request: r,
                        dist,
                        path,
                    })
                })
                .collect()
        },
    );
    per_group.into_iter().flatten().collect()
}

/// Tuple-shaped variant of [`shortest_paths_grouped`] shared with the
/// repetitions algorithm (which keeps every request in the pool forever).
pub(crate) fn shortest_paths_grouped_for_repeat(
    instance: &UfpInstance,
    remaining: &[RequestId],
    weights: &DualWeights,
    pool: &Pool,
) -> Vec<(RequestId, f64, Path)> {
    shortest_paths_grouped(instance, remaining, weights, None, pool)
        .into_iter()
        .map(|f| (f.request, f.dist, f.path))
        .collect()
}

/// Residual-capacity variant: the edge filter depends on each request's
/// demand, so requests are queried individually.
fn shortest_paths_residual(
    instance: &UfpInstance,
    remaining: &[RequestId],
    weights: &DualWeights,
    residual: &[f64],
    usable: Option<&[bool]>,
    pool: &Pool,
) -> Vec<PathFinding> {
    let graph = instance.graph();
    let w = weights.weights();
    let mut sorted: Vec<RequestId> = remaining.to_vec();
    sorted.sort_unstable();
    let results: Vec<Option<PathFinding>> = pool.map_with(
        &sorted,
        || Dijkstra::new(graph.num_nodes()),
        |dij, _, &r| {
            let req = instance.request(r);
            let res = dij.shortest_path(graph, w, req.src, req.dst, |e| {
                usable.is_none_or(|u| u[e.index()]) && residual[e.index()] >= req.demand - 1e-12
            })?;
            Some(PathFinding {
                request: r,
                dist: res.distance,
                path: res.path,
            })
        },
    );
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A wide single edge easily fits everything.
    #[test]
    fn routes_everything_when_capacity_abounds() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 100.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..10)
                .map(|_| Request::new(n(0), n(1), 1.0, 1.0))
                .collect(),
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        assert_eq!(res.solution.len(), 10);
        assert_eq!(res.trace.stop_reason, StopReason::Exhausted);
        assert!(res.solution.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn output_is_always_capacity_feasible() {
        // Lemma 3.3: the guard alone keeps the output feasible, even with
        // far more demand than capacity.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..100)
                .map(|i| Request::new(n(0), n(1), 1.0, 1.0 + (i % 7) as f64))
                .collect(),
        );
        for eps in [0.1, 0.3, 0.5, 1.0] {
            let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
            assert!(
                res.solution.check_feasible(&inst, false).is_ok(),
                "eps={eps}: infeasible output"
            );
            assert!(res.solution.len() <= 10, "eps={eps}: capacity is 10");
        }
    }

    #[test]
    fn prefers_high_value_per_demand() {
        // One slot: capacity exactly fits one unit-demand request. The
        // request with the lowest d/v (= highest value) must win.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 2.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 10.0),
                Request::new(n(0), n(1), 1.0, 3.0),
            ],
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        assert!(res.solution.contains(crate::request::RequestId(1)));
        // first pick is the most valuable request
        assert_eq!(res.solution.routed[0].0, crate::request::RequestId(1));
    }

    #[test]
    fn avoids_congested_edges() {
        // Diamond: after loading the top path, the algorithm should route
        // via the bottom.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 20.0); // top
        gb.add_edge(n(1), n(3), 20.0);
        gb.add_edge(n(0), n(2), 20.0); // bottom
        gb.add_edge(n(2), n(3), 20.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..30)
                .map(|_| Request::new(n(0), n(3), 1.0, 1.0))
                .collect(),
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        assert!(res.solution.check_feasible(&inst, false).is_ok());
        // both paths must be used — one path alone holds only 20
        assert!(
            res.solution.len() > 20,
            "routed {} requests",
            res.solution.len()
        );
        let loads = res.solution.edge_loads(&inst);
        assert!(loads[0] > 0.0 && loads[2] > 0.0, "loads {loads:?}");
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut gb = GraphBuilder::directed(6);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    gb.add_edge(n(i), n(j), 8.0);
                }
            }
            gb.add_edge(n(i), n(5), 8.0);
        }
        let inst = UfpInstance::new(
            gb.build(),
            (0..40)
                .map(|i| {
                    Request::new(
                        n(i % 5),
                        n(5),
                        0.5 + 0.1 * ((i % 4) as f64),
                        1.0 + (i % 9) as f64,
                    )
                })
                .collect(),
        );
        let seq = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.3));
        let par = bounded_ufp(
            &inst,
            &BoundedUfpConfig::with_epsilon(0.3).parallel(Pool::new(4)),
        );
        assert_eq!(seq.solution.routed.len(), par.solution.routed.len());
        for (a, b) in seq.solution.routed.iter().zip(&par.solution.routed) {
            assert_eq!(a.0, b.0, "selection order must match");
            assert_eq!(a.1.nodes(), b.1.nodes(), "paths must match");
        }
    }

    #[test]
    fn dual_certificate_bounds_the_optimum() {
        // OPT here is exactly 10 (capacity 10, unit demands, unit values).
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..30)
                .map(|_| Request::new(n(0), n(1), 1.0, 1.0))
                .collect(),
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.4));
        let bound = res.dual_upper_bound().expect("certificate applies");
        assert!(bound >= 10.0 - 1e-6, "dual bound {bound} below OPT 10");
        let ratio = res.certified_ratio(&inst).unwrap();
        assert!(ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn disconnected_requests_stop_cleanly() {
        let gb = GraphBuilder::directed(4);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 1.0)]);
        let res = bounded_ufp(&inst, &BoundedUfpConfig::default());
        assert!(res.solution.is_empty());
        assert_eq!(res.trace.stop_reason, StopReason::NoPath);
    }

    #[test]
    fn residual_mode_is_feasible_and_certificate_free() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 3.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..9).map(|_| Request::new(n(0), n(1), 1.0, 1.0)).collect(),
        );
        let mut cfg = BoundedUfpConfig::with_epsilon(0.5);
        cfg.respect_residual = true;
        let res = bounded_ufp(&inst, &cfg);
        assert!(res.solution.check_feasible(&inst, false).is_ok());
        assert_eq!(res.solution.len(), 3);
        assert!(res.dual_upper_bound().is_none());
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn rejects_unnormalized_instances() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 2.0, 1.0)]);
        bounded_ufp(&inst, &BoundedUfpConfig::default());
    }

    #[test]
    fn trivial_epoch_context_is_bit_identical_to_one_shot() {
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 12.0);
        gb.add_edge(n(1), n(3), 9.0);
        gb.add_edge(n(0), n(2), 11.0);
        gb.add_edge(n(2), n(3), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..25)
                .map(|i| {
                    Request::new(
                        n(0),
                        n(3),
                        0.5 + 0.05 * (i % 10) as f64,
                        1.0 + (i % 4) as f64,
                    )
                })
                .collect(),
        );
        let cfg = BoundedUfpConfig::with_epsilon(0.4);
        let one_shot = bounded_ufp(&inst, &cfg);
        let caps: Vec<f64> = inst.graph().edges().iter().map(|e| e.capacity).collect();
        let usable = vec![true; caps.len()];
        let carry = vec![0.0; caps.len()];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
        };
        let epoch = bounded_ufp_epoch(&inst, &cfg, Some(&ctx));
        assert_eq!(
            one_shot.solution.routed.len(),
            epoch.run.solution.routed.len()
        );
        for (a, b) in one_shot
            .solution
            .routed
            .iter()
            .zip(&epoch.run.solution.routed)
        {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.nodes(), b.1.nodes());
        }
        // Carry must record exactly the line-10 exponents of this run.
        let loads = epoch.run.solution.edge_loads(&inst);
        for (e, &k) in epoch.carry.iter().enumerate() {
            let expected = 0.4 * inst.graph().min_capacity() * loads[e] / caps[e];
            assert!(
                (k - expected).abs() < 1e-9,
                "edge {e}: carry {k} != {expected}"
            );
        }
    }

    #[test]
    fn saturated_edges_do_not_stall_the_epoch() {
        // Edge 0 is saturated (residual 0, unusable); the bottom path must
        // still admit traffic even though min-over-all-residuals is 0.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 10.0); // saturated top
        gb.add_edge(n(1), n(3), 10.0);
        gb.add_edge(n(0), n(2), 10.0); // free bottom
        gb.add_edge(n(2), n(3), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..6).map(|_| Request::new(n(0), n(3), 1.0, 1.0)).collect(),
        );
        let caps = [0.0, 10.0, 10.0, 10.0];
        let usable = [false, true, true, true];
        let carry = [0.0; 4];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
        };
        let cfg = BoundedUfpConfig::with_epsilon(0.5);
        let epoch = bounded_ufp_epoch(&inst, &cfg, Some(&ctx));
        assert!(!epoch.run.solution.is_empty(), "bottom path should admit");
        let loads = epoch.run.solution.edge_loads(&inst);
        assert_eq!(loads[0], 0.0, "saturated edge must stay untouched");
        assert!(loads[2] > 0.0);
    }

    #[test]
    fn carried_weights_steer_later_epochs() {
        // Same diamond; heavy carry on the top path pushes epoch-2 routes
        // to the bottom even with full residual capacity everywhere.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 20.0);
        gb.add_edge(n(1), n(3), 20.0);
        gb.add_edge(n(0), n(2), 20.0);
        gb.add_edge(n(2), n(3), 20.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..4).map(|_| Request::new(n(0), n(3), 1.0, 1.0)).collect(),
        );
        let caps = [20.0; 4];
        let usable = [true; 4];
        let carry = [5.0, 5.0, 0.0, 0.0];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
        };
        let cfg = BoundedUfpConfig::with_epsilon(0.5);
        let epoch = bounded_ufp_epoch(&inst, &cfg, Some(&ctx));
        let loads = epoch.run.solution.edge_loads(&inst);
        assert!(
            loads[0] == 0.0 && loads[2] > 0.0,
            "carry ignored: {loads:?}"
        );
    }

    #[test]
    fn monotone_in_value_on_a_small_instance() {
        // Lemma 3.4 spot check: a selected request stays selected when its
        // value rises.
        let mut gb = GraphBuilder::directed(3);
        gb.add_edge(n(0), n(1), 4.0);
        gb.add_edge(n(1), n(2), 4.0);
        let base = vec![
            Request::new(n(0), n(2), 1.0, 2.0),
            Request::new(n(0), n(2), 1.0, 3.0),
            Request::new(n(0), n(1), 1.0, 1.0),
            Request::new(n(1), n(2), 0.7, 2.5),
        ];
        let inst = UfpInstance::new(gb.build(), base);
        let cfg = BoundedUfpConfig::with_epsilon(0.4);
        let res = bounded_ufp(&inst, &cfg);
        for rid in inst.request_ids() {
            if !res.solution.contains(rid) {
                continue;
            }
            for factor in [1.1, 2.0, 10.0] {
                let v = inst.request(rid).value * factor;
                let probe = inst.with_declared_type(rid, inst.request(rid).demand, v);
                let res2 = bounded_ufp(&probe, &cfg);
                assert!(
                    res2.solution.contains(rid),
                    "raising value of {rid} by {factor} dropped it"
                );
            }
        }
    }
}
