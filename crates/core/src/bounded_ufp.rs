//! Algorithm 1 — `Bounded-UFP(ε)`: the paper's monotone deterministic
//! primal–dual algorithm for the `Ω(ln m / ε²)`-bounded unsplittable flow
//! problem, with approximation ratio approaching `e/(e−1)` (Theorem 3.1).
//!
//! Faithful to the paper's pseudocode:
//!
//! 1. `y_e ← 1/c_e` for every edge.
//! 2. While requests remain and `Σ c_e y_e ≤ e^{ε(B−1)}`:
//!    a. for every unrouted request `r`, find the shortest `s_r → t_r`
//!    path `p_r` under weights `y`;
//!    b. select `r̂` minimizing the *normalized length*
//!    `(d_r / v_r)·|p_r|` (ties broken by request id — any fixed rule
//!    preserves monotonicity);
//!    c. multiply `y_e ← y_e · e^{εB d_{r̂} / c_e}` along `p_{r̂}`;
//!    d. route `r̂` on `p_{r̂}`.
//!
//! Production details beyond the pseudocode (see DESIGN.md §4):
//! log-space weights so small ε cannot overflow, per-iteration parallel
//! shortest-path fan-out grouped by source vertex, and the Claim 3.6 dual
//! certificate recorded per iteration so every run carries a certified
//! bound on its own approximation ratio.

use ufp_netgraph::dijkstra::{Dijkstra, Targets};
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::path::Path;
use ufp_obs::{Phase, Recorder};
use ufp_par::Pool;

use crate::instance::UfpInstance;
use crate::request::RequestId;
use crate::selection::{IncrementalSelector, SelectInputs, SelectionStrategy};
use crate::solution::UfpSolution;
use crate::trace::{Certificate, IterationRecord, RunTrace, StopReason};
use crate::weights::DualWeights;

/// Configuration for [`bounded_ufp`].
#[derive(Clone, Debug)]
pub struct BoundedUfpConfig {
    /// Accuracy parameter ε ∈ (0, 1]. Theorem 3.1 calls the algorithm
    /// with `ε/6` to obtain a `(1+ε)·e/(e−1)` guarantee when
    /// `B ≥ ln(m)/ε²`.
    pub epsilon: f64,
    /// Parallelism for the per-iteration shortest-path fan-out.
    pub pool: Pool,
    /// Extension (not in the paper): restrict path search to edges with
    /// residual capacity ≥ the request's demand. Feasibility then holds
    /// by construction instead of by the guard, but the Claim 3.6 dual
    /// certificate no longer applies (`α` may be inflated). Monotonicity
    /// is preserved: lowering one's demand only enlarges one's own path
    /// set. Used by the E10/E11 ablations.
    pub respect_residual: bool,
    /// How each iteration's argmin is found. Both strategies are
    /// bit-identical in every output; see [`SelectionStrategy`].
    pub selection: SelectionStrategy,
    /// Observability recorder (off by default). Strictly out-of-band:
    /// it sees guard slack, dual-weight growth, and selection phases,
    /// and feeds nothing back — runs are bit-identical with it on or
    /// off.
    pub obs: Recorder,
}

impl Default for BoundedUfpConfig {
    fn default() -> Self {
        BoundedUfpConfig {
            epsilon: 0.1,
            pool: Pool::sequential(),
            respect_residual: false,
            selection: SelectionStrategy::default(),
            obs: Recorder::off(),
        }
    }
}

impl BoundedUfpConfig {
    /// Paper-faithful configuration with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must lie in (0, 1], got {epsilon}"
        );
        BoundedUfpConfig {
            epsilon,
            ..Default::default()
        }
    }

    /// Same configuration with a parallel pool.
    pub fn parallel(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Same configuration with the given selection strategy.
    pub fn with_selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }

    /// Same configuration with an observability recorder attached.
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }
}

/// Result of a [`bounded_ufp`] run.
#[derive(Clone, Debug)]
pub struct UfpRunResult {
    /// The allocation `W`.
    pub solution: UfpSolution,
    /// Analysis trace (α, D₁, P per iteration) and stop reason.
    pub trace: RunTrace,
}

impl UfpRunResult {
    /// Certified upper bound on OPT via Claim 3.6, if applicable.
    pub fn dual_upper_bound(&self) -> Option<f64> {
        self.trace.dual_upper_bound()
    }

    /// Certified upper bound on OPT, tightened with the trivial bound
    /// `OPT ≤ Σ_r v_r` (which is what makes exhausted runs — the paper's
    /// "if L = ∅ the output is optimal" case — certify ratio 1).
    pub fn tight_upper_bound(&self, instance: &UfpInstance) -> Option<f64> {
        self.dual_upper_bound()
            .map(|d| d.min(instance.total_value()))
    }

    /// Certified approximation ratio `bound / value` (≥ 1 up to fp noise).
    pub fn certified_ratio(&self, instance: &UfpInstance) -> Option<f64> {
        let v = self.solution.value(instance);
        if v <= 0.0 {
            return None;
        }
        self.tight_upper_bound(instance).map(|d| d / v)
    }
}

/// Per-request shortest-path query result within one iteration.
///
/// The argmin selection needs every remaining request's distance, but
/// only the *selected* request's path is ever used. For large remaining
/// sets the fan-out therefore skips the `O(remaining · hops)` path
/// reconstructions (`path: None`) and the main loop re-derives the one
/// chosen path with a single targeted Dijkstra — bit-identical, since
/// pop order and parent pointers do not depend on the target set. For
/// small remaining sets (fewer than the graph has nodes) the
/// reconstructions are cheaper than an extra Dijkstra, so the fan-out
/// keeps collecting paths. Either mode yields identical results; the
/// switch is purely a cost model.
struct PathFinding {
    request: RequestId,
    /// Distance in *materialized* (shifted) weight scale.
    dist: f64,
}

/// Residual-epoch inputs that let `ufp-engine` reuse Algorithm 1
/// incrementally across streaming batches. All three slices are indexed
/// by edge id of the instance graph.
///
/// With a trivial context (full capacities, everything usable, zero
/// carry) the epoch run produces the identical allocation — same
/// selection order, same paths, bit-identical trace records — as the
/// one-shot [`bounded_ufp`]; the engine/offline equivalence tests rely
/// on that. The only difference: epoch runs never carry a Claim 3.6
/// certificate (`dual_upper_bound()` is `None`), because the claim's
/// premise does not survive masked edges or carried weights.
#[derive(Clone, Copy, Debug)]
pub struct EpochContext<'a> {
    /// Effective (residual) capacity per edge; replaces `c_e` in the
    /// weight initialization, the guard bound `B`, and the line-10
    /// exponent.
    pub capacities: &'a [f64],
    /// Edges admissible this epoch. Unusable (saturated) edges are
    /// excluded from path search, from `B`, and from the guard sum `D₁`.
    pub usable: &'a [bool],
    /// Carried ln-space dual exponents from earlier epochs:
    /// `y_e` starts at `e^{carry_e}/c_e` instead of `1/c_e`, preserving
    /// congestion memory across batches.
    pub carry: &'a [f64],
    /// Edges this run may *route over*, on top of `usable` (`None` = all
    /// usable edges, the pre-sharding behavior). A sharded engine hands
    /// every shard the **global** `capacities`/`usable`/`carry` — so the
    /// bound `B`, the guard sum `D₁`, and the line-10 exponents are
    /// bit-identical to a single global engine's — while restricting
    /// path search to the shard's own territory through this mask.
    /// Routable-but-unusable edges stay excluded; usable-but-unroutable
    /// edges still count toward `B` and `D₁` but never appear on paths.
    pub routable: Option<&'a [bool]>,
}

/// Result of a [`bounded_ufp_epoch`] run: the ordinary run result plus
/// the carried-forward dual exponents (input carry + this epoch's
/// line-10 bumps).
#[derive(Clone, Debug)]
pub struct EpochOutcome {
    /// Allocation and trace, exactly as from [`bounded_ufp`].
    pub run: UfpRunResult,
    /// `carry_in + Σ bumps` per edge — hand this to the next epoch.
    /// Empty for context-free (one-shot) runs, which have no next epoch;
    /// tracking it there would tax every `critical_value` probe.
    pub carry: Vec<f64>,
}

/// Run Algorithm 1. The instance must be normalized (`d_r ∈ (0,1]`).
pub fn bounded_ufp(instance: &UfpInstance, config: &BoundedUfpConfig) -> UfpRunResult {
    bounded_ufp_epoch(instance, config, None).run
}

/// One recorded selection step of an epoch run: everything needed to
/// re-apply the step's state mutations *without* re-running its
/// shortest-path queries. The bump exponents are stored verbatim so the
/// replay is bit-identical to the original arithmetic sequence.
#[derive(Clone, Debug)]
struct ResumeStep {
    path: Path,
    /// Line-10 exponent per path edge, in `path.edges()` order.
    bumps: Vec<f64>,
    /// Raw (materialized-scale) argmin score `(d/v)·|p|` at selection
    /// time — the exact `f64` the selection loop compared, before the
    /// `ln`+shift round-trip that produces `record.ln_alpha`. Kept so
    /// external mergers can break `ln α` ties by the loop's own key.
    raw_score: f64,
    record: IterationRecord,
}

/// Per-step checkpoint trace of an epoch run, produced by
/// [`bounded_ufp_epoch_traced`]. From it, [`EpochResumeTrace::checkpoint`]
/// reconstructs the run's exact state after any step prefix in
/// `O(prefix · path length)` arithmetic — no shortest-path work — and
/// [`bounded_ufp_epoch_resume`] continues the run from there.
///
/// The point (Lemma 3.4's monotonicity made operational): when one
/// agent's declared value is *lowered*, the selection sequence is
/// unchanged up to the step that originally selected that agent — its
/// score `(d/v)·|p|` only rises, and every earlier argmin already beat
/// it. Critical-value bisection therefore only needs to re-run the
/// *suffix* from that step for each probe, which is what makes truthful
/// pricing viable at 10⁴-request epochs.
#[derive(Clone, Debug, Default)]
pub struct EpochResumeTrace {
    steps: Vec<ResumeStep>,
}

/// Read-only view of one recorded selection step, exposed so external
/// replayers — in particular `ufp_shard`'s cross-shard reconciliation,
/// which merges several shards' traces into one global order and
/// re-applies the recorded bumps through a global [`DualWeights`] — can
/// reproduce the exact arithmetic of the traced run without re-running
/// any shortest-path work.
#[derive(Clone, Copy, Debug)]
pub struct TraceStep<'a> {
    /// The request this step selected.
    pub selected: RequestId,
    /// `ln α` of the selected path at selection time (shift-invariant,
    /// so scores recorded by runs with different materialization scales
    /// remain comparable).
    pub ln_alpha: f64,
    /// Raw argmin score `(d/v)·|p|` exactly as the selection loop
    /// compared it — the full-precision key behind `ln_alpha`, which
    /// loses up to one ulp in the `ln` round-trip. Tie-break on this
    /// (then on id) to reproduce single-run selection order exactly.
    /// Unlike `ln_alpha` it is in the run's materialization scale, so it
    /// is only comparable across runs whose `DualWeights` shifts agree
    /// (true for shards replaying the same epoch context until a
    /// re-center diverges — and a divergent re-center already perturbs
    /// `ln_alpha`'s own bits).
    pub raw_score: f64,
    /// The routed path.
    pub path: &'a Path,
    /// Line-10 exponent per path edge, verbatim as applied.
    pub bumps: &'a [f64],
}

impl EpochResumeTrace {
    /// Number of recorded selection steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The step index at which `r` was selected, if it was.
    pub fn selection_step(&self, r: RequestId) -> Option<usize> {
        self.steps.iter().position(|s| s.record.selected == r)
    }

    /// Read-only view of step `i` (panics past the end of the trace).
    pub fn step(&self, i: usize) -> TraceStep<'_> {
        let s = &self.steps[i];
        TraceStep {
            selected: s.record.selected,
            ln_alpha: s.record.ln_alpha,
            raw_score: s.raw_score,
            path: &s.path,
            bumps: &s.bumps,
        }
    }

    /// Append one externally supplied step — the assembly primitive for
    /// *merged* traces. A sharded engine's merge-replay interleaves the
    /// shards' recorded steps into the global `(ln α, raw score, id)`
    /// order; pushing each merged step here (with its request id remapped
    /// into the global epoch instance, `ln_d1` read from the global dual
    /// weights, and `routed_value_before` the global running value sum)
    /// yields an [`EpochResumeTrace`] over the global instance that
    /// behaves exactly like one produced by [`bounded_ufp_epoch_traced`]:
    /// [`Self::checkpoint`] / [`Self::prefix_outcome`] replay it by
    /// arithmetic, and [`bounded_ufp_epoch_resume_watch`] prices winners
    /// against it with the same O(suffix) resume discipline.
    ///
    /// `bumps` must hold one line-10 exponent per `path.edges()` entry,
    /// and `routed_value_before` must equal the sum of the previously
    /// pushed steps' request values in push order (the replay
    /// debug-asserts this ordering invariant).
    #[allow(clippy::too_many_arguments)] // mirrors the recorded step verbatim
    pub fn push_step(
        &mut self,
        selected: RequestId,
        ln_alpha: f64,
        raw_score: f64,
        ln_d1: f64,
        routed_value_before: f64,
        path: Path,
        bumps: Vec<f64>,
    ) {
        assert_eq!(
            path.edges().len(),
            bumps.len(),
            "one bump exponent per path edge"
        );
        self.steps.push(ResumeStep {
            path,
            bumps,
            raw_score,
            record: IterationRecord {
                selected,
                ln_alpha,
                ln_d1,
                routed_value_before,
            },
        });
    }

    /// Repackage the first `steps` selections as a completed
    /// [`EpochOutcome`] with the given stop reason — bit-identical
    /// solution, records, and carry prefix, reconstructed by arithmetic
    /// replay. This is how a sharded engine truncates a shard's
    /// over-admission when the *global* guard (which the shard could not
    /// see) tripped mid-epoch: the kept prefix is exactly the run the
    /// shard would have produced had it stopped there.
    pub fn prefix_outcome(
        &self,
        instance: &UfpInstance,
        config: &BoundedUfpConfig,
        ctx: Option<&EpochContext<'_>>,
        steps: usize,
        stop_reason: StopReason,
    ) -> EpochOutcome {
        let checkpoint = self.checkpoint(instance, config, ctx, steps);
        let b = epoch_bound_b(instance, ctx);
        let ln_guard = config.epsilon * (b - 1.0);
        finish_outcome(
            config,
            ctx.is_some(),
            checkpoint.state,
            stop_reason,
            ln_guard,
        )
    }

    /// Reconstruct the run state after the first `steps` selections, by
    /// replaying the recorded mutations (no shortest-path queries).
    /// `instance`, `config` and `ctx` must match the traced run — except
    /// that requests not selected within the prefix may carry different
    /// declared values (the counterfactuals of payment probes).
    pub fn checkpoint(
        &self,
        instance: &UfpInstance,
        config: &BoundedUfpConfig,
        ctx: Option<&EpochContext<'_>>,
        steps: usize,
    ) -> EpochCheckpoint {
        assert!(
            steps <= self.steps.len(),
            "checkpoint past the end of the trace ({steps} > {})",
            self.steps.len()
        );
        validate_epoch_inputs(instance, config, ctx);
        let mut state = EpochRunState::init(instance, ctx);
        for step in &self.steps[..steps] {
            state.replay(instance, step);
        }
        EpochCheckpoint { state }
    }
}

/// Materialized state of an epoch run after some step prefix — the
/// resumable snapshot handed to [`bounded_ufp_epoch_resume`] /
/// [`bounded_ufp_epoch_resume_watch`]. After
/// [`EpochCheckpoint::strip_outcome_state`], cloning is `O(m + n)`
/// (weight vectors plus bookkeeping) — what each bisection probe costs
/// up front instead of a full re-run.
#[derive(Clone, Debug)]
pub struct EpochCheckpoint {
    state: EpochRunState,
}

impl EpochCheckpoint {
    /// Number of selection steps already applied in this snapshot.
    pub fn steps(&self) -> usize {
        self.state.steps_done
    }

    /// Drop the accumulated prefix solution, iteration records, and
    /// carry from this snapshot. The result still answers
    /// selection-membership questions exactly (everything the loop's
    /// control flow reads — weights, residuals, remaining set, routed
    /// value — is retained), so it is the right thing to clone per
    /// [`bounded_ufp_epoch_resume_watch`] probe: the prefix paths and
    /// records are dead weight there, and a deep prefix would otherwise
    /// be re-copied on every probe. Do **not** feed a stripped
    /// checkpoint to [`bounded_ufp_epoch_resume`] if you need the full
    /// outcome — its solution and trace would be missing the prefix.
    pub fn strip_outcome_state(mut self) -> EpochCheckpoint {
        self.state.solution.routed.clear();
        self.state.solution.routed.shrink_to_fit();
        self.state.records.clear();
        self.state.records.shrink_to_fit();
        self.state.carry = None;
        self
    }
}

/// Everything the Algorithm 1 main loop mutates, factored out so runs
/// can be checkpointed, cloned, and resumed.
#[derive(Clone, Debug)]
struct EpochRunState {
    weights: DualWeights,
    carry: Option<Vec<f64>>,
    remaining: Vec<RequestId>,
    residual: Vec<f64>,
    solution: UfpSolution,
    routed_value: f64,
    records: Vec<IterationRecord>,
    /// Selection steps applied so far. Tracked separately from
    /// `records.len()` so stripped probe checkpoints keep reporting
    /// their position ([`EpochCheckpoint::steps`]).
    steps_done: usize,
}

impl EpochRunState {
    fn init(instance: &UfpInstance, ctx: Option<&EpochContext<'_>>) -> Self {
        let graph = instance.graph();
        let weights = match ctx {
            None => DualWeights::new(graph),
            Some(c) => DualWeights::with_context(c.capacities, c.usable, c.carry),
        };
        let carry: Option<Vec<f64>> = ctx.map(|c| c.carry.to_vec());
        let remaining: Vec<RequestId> = instance.request_ids().collect();
        let residual: Vec<f64> = match ctx {
            None => graph.edges().iter().map(|e| e.capacity).collect(),
            Some(c) => c.capacities.to_vec(),
        };
        let n = remaining.len();
        EpochRunState {
            weights,
            carry,
            remaining,
            residual,
            solution: UfpSolution::empty(),
            routed_value: 0.0,
            records: Vec::with_capacity(n),
            steps_done: 0,
        }
    }

    /// Re-apply one recorded step: identical mutation order (record,
    /// bumps, carry, residual, value, solution, remaining) and identical
    /// arithmetic to the live loop, so the resulting state is
    /// bit-identical to having executed the step.
    fn replay(&mut self, instance: &UfpInstance, step: &ResumeStep) {
        let req = *instance.request(step.record.selected);
        debug_assert_eq!(
            step.record.routed_value_before, self.routed_value,
            "resume trace replayed out of order"
        );
        self.records.push(step.record);
        for (&e, &exponent) in step.path.edges().iter().zip(&step.bumps) {
            self.weights.bump(e, exponent);
            if let Some(k) = self.carry.as_mut() {
                k[e.index()] += exponent;
            }
            self.residual[e.index()] -= req.demand;
        }
        self.routed_value += req.value;
        self.solution
            .routed
            .push((step.record.selected, step.path.clone()));
        let selected = step.record.selected;
        self.remaining.retain(|r| *r != selected);
        self.steps_done += 1;
    }
}

/// How one call to [`run_epoch_loop`] ended.
enum LoopEnd {
    /// The loop stopped for one of Algorithm 1's reasons.
    Stopped(StopReason),
    /// The watched request was about to be selected; the state is frozen
    /// at the top of that iteration (nothing of the step applied).
    WatchSelected,
}

/// Shared input validation for all epoch entry points.
fn validate_epoch_inputs(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
) {
    assert!(
        instance.is_normalized(),
        "Bounded-UFP requires a normalized instance (demands in (0,1]); \
         call UfpInstance::normalized() first"
    );
    assert!(
        config.epsilon > 0.0 && config.epsilon <= 1.0,
        "epsilon must lie in (0, 1]"
    );
    if let Some(c) = ctx {
        let m = instance.graph().num_edges();
        assert_eq!(c.capacities.len(), m);
        assert_eq!(c.usable.len(), m);
        assert_eq!(c.carry.len(), m);
        if let Some(r) = c.routable {
            assert_eq!(r.len(), m);
        }
    }
}

/// The loop's path-search filter: `usable ∧ routable`, materialized only
/// when the context actually restricts routing beyond usability.
fn path_mask(ctx: Option<&EpochContext<'_>>) -> Option<Vec<bool>> {
    let c = ctx?;
    let r = c.routable?;
    Some(c.usable.iter().zip(r).map(|(&u, &x)| u && x).collect())
}

/// The guard bound `B`: minimum capacity over (usable) edges.
fn epoch_bound_b(instance: &UfpInstance, ctx: Option<&EpochContext<'_>>) -> f64 {
    match ctx {
        None => instance.graph().min_capacity(),
        Some(c) => c
            .capacities
            .iter()
            .zip(c.usable)
            .filter(|&(_, &u)| u)
            .map(|(&cap, _)| cap)
            .fold(f64::INFINITY, f64::min),
    }
}

/// The Algorithm 1 main loop over an [`EpochRunState`], dispatching on
/// the configured [`SelectionStrategy`]. Both bodies drive the same
/// [`apply_step`], and their selections are bit-identical by the
/// monotonicity contract (proptested) — strategy choice changes cost,
/// never results.
///
/// * `record_steps` — when set, every executed step is appended as a
///   [`ResumeStep`] (the traced run).
/// * `watch` — when set, the loop returns [`LoopEnd::WatchSelected`]
///   *before* applying the step that would select the watched request,
///   leaving the state at the top of that iteration. Payment probes use
///   this both as an early exit ("it wins at this declared value") and
///   as a deeper checkpoint for every later probe at a lower value.
#[allow(clippy::too_many_arguments)] // internal: one call site per entry point
fn run_epoch_loop(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    usable: Option<&[bool]>,
    b: f64,
    ln_guard: f64,
    state: &mut EpochRunState,
    record_steps: Option<&mut Vec<ResumeStep>>,
    watch: Option<RequestId>,
) -> LoopEnd {
    match config.selection {
        SelectionStrategy::FanOut => run_epoch_loop_fanout(
            instance,
            config,
            usable,
            b,
            ln_guard,
            state,
            record_steps,
            watch,
        ),
        SelectionStrategy::Incremental => run_epoch_loop_incremental(
            instance,
            config,
            usable,
            b,
            ln_guard,
            state,
            record_steps,
            watch,
        ),
    }
}

/// Apply one selected step to the loop state: the iteration record, the
/// line-10 weight bumps, carry, residuals, routed value, the remaining
/// set, and the solution/trace appends — in exactly this order, which
/// [`EpochRunState::replay`] reproduces for bit-identical resumes. Both
/// selection strategies funnel through here so the mutation sequence
/// cannot diverge between them.
#[allow(clippy::too_many_arguments)] // internal: the loop bodies are the only callers
fn apply_step(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    b: f64,
    state: &mut EpochRunState,
    record_steps: Option<&mut Vec<ResumeStep>>,
    selected: RequestId,
    score: f64,
    ln_d1: f64,
    path: Path,
) {
    let eps = config.epsilon;
    let req = *instance.request(selected);

    // Claim 3.6 bookkeeping: α(i) in log space (shift restores the
    // true scale of the materialized distance).
    let ln_alpha = if score > 0.0 {
        score.ln() + state.weights.shift()
    } else {
        f64::NEG_INFINITY
    };
    let record = IterationRecord {
        selected,
        ln_alpha,
        ln_d1,
        routed_value_before: state.routed_value,
    };
    state.records.push(record);

    // Line 10: y_e ← y_e · e^{εB d / c_e} along the chosen path.
    let mut bumps = record_steps
        .is_some()
        .then(|| Vec::with_capacity(path.edges().len()));
    for &e in path.edges() {
        let c = state.weights.capacity(e);
        let exponent = eps * b * req.demand / c;
        state.weights.bump(e, exponent);
        if let Some(k) = state.carry.as_mut() {
            k[e.index()] += exponent;
        }
        state.residual[e.index()] -= req.demand;
        if let Some(bs) = bumps.as_mut() {
            bs.push(exponent);
        }
    }

    state.routed_value += req.value;
    state.remaining.retain(|r| *r != selected);
    state.steps_done += 1;
    if let Some(steps) = record_steps {
        state.solution.routed.push((selected, path.clone()));
        steps.push(ResumeStep {
            path,
            bumps: bumps.unwrap_or_default(),
            raw_score: score,
            record,
        });
    } else {
        state.solution.routed.push((selected, path));
    }
}

/// The paper-literal loop: full shortest-path fan-out every iteration.
#[allow(clippy::too_many_arguments)]
fn run_epoch_loop_fanout(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    usable: Option<&[bool]>,
    b: f64,
    ln_guard: f64,
    state: &mut EpochRunState,
    mut record_steps: Option<&mut Vec<ResumeStep>>,
    watch: Option<RequestId>,
) -> LoopEnd {
    let mut path_scratch = Dijkstra::new(instance.graph().num_nodes());
    let mut path_buf = Path::trivial(NodeId(0));
    loop {
        if state.remaining.is_empty() {
            return LoopEnd::Stopped(StopReason::Exhausted);
        }
        let ln_d1 = state.weights.ln_dual_sum();
        if ln_d1 > ln_guard {
            return LoopEnd::Stopped(StopReason::Guard);
        }

        // Cost model only — results are identical either way (see
        // `PathFinding`): below one path-reconstruction per node, the
        // fan-out collects paths inline; above it, distances only plus
        // one targeted re-run for the winner. Both fan-out variants
        // (grouped and residual-gated) follow the same model.
        let collect_paths = state.remaining.len() < instance.graph().num_nodes();
        let (findings, mut paths) = {
            let _span = config.obs.span(Phase::SelectionDijkstra);
            if config.respect_residual {
                shortest_findings_residual(
                    instance,
                    &state.remaining,
                    &state.weights,
                    &state.residual,
                    usable,
                    &config.pool,
                    collect_paths,
                )
            } else {
                shortest_findings_grouped(
                    instance,
                    &state.remaining,
                    &state.weights,
                    usable,
                    &config.pool,
                    collect_paths,
                )
            }
        };

        // Select r̂ minimizing (d/v)·|p| — deterministic tie-break on
        // request id (`<` keeps the first minimum among equal scores,
        // and every fan-out yields findings in an order where explicit
        // id comparison resolves ties identically).
        let mut best: Option<(f64, usize)> = None;
        for (i, f) in findings.iter().enumerate() {
            let score = instance.request(f.request).density() * f.dist;
            let better = match best {
                None => true,
                Some((bs, bi)) => score < bs || (score == bs && f.request < findings[bi].request),
            };
            if better {
                best = Some((score, i));
            }
        }
        let Some((score, idx)) = best else {
            return LoopEnd::Stopped(StopReason::NoPath);
        };
        let selected = findings[idx].request;
        if watch == Some(selected) {
            return LoopEnd::WatchSelected;
        }
        // Materialize only the winner's path: taken from the fan-out if
        // it collected paths, re-derived with one targeted query into
        // the reusable buffer if not.
        let path = if paths.is_empty() {
            chosen_path_into(
                &mut path_scratch,
                &mut path_buf,
                instance,
                &state.weights,
                config.respect_residual.then_some(state.residual.as_slice()),
                usable,
                selected,
            );
            path_buf.clone()
        } else {
            // Index-aligned with findings; order is dead after this read.
            paths.swap_remove(idx)
        };

        apply_step(
            instance,
            config,
            b,
            state,
            record_steps.as_deref_mut(),
            selected,
            score,
            ln_d1,
            path,
        );
    }
}

/// The incremental loop: dirty-set path cache + lazy score heap (see
/// [`crate::selection`]). Selector state is *derived* — rebuildable from
/// the loop state at any point — so checkpoints, resume traces, watch
/// probes, and snapshots need no knowledge of it.
#[allow(clippy::too_many_arguments)]
fn run_epoch_loop_incremental(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    usable: Option<&[bool]>,
    b: f64,
    ln_guard: f64,
    state: &mut EpochRunState,
    mut record_steps: Option<&mut Vec<ResumeStep>>,
    watch: Option<RequestId>,
) -> LoopEnd {
    let mut selector = IncrementalSelector::new(instance);
    loop {
        if state.remaining.is_empty() {
            return LoopEnd::Stopped(StopReason::Exhausted);
        }
        let ln_d1 = state.weights.ln_dual_sum();
        if ln_d1 > ln_guard {
            return LoopEnd::Stopped(StopReason::Guard);
        }

        let selection = {
            let inputs = SelectInputs {
                instance,
                weights: &state.weights,
                residual: &state.residual,
                usable,
                respect_residual: config.respect_residual,
                pool: &config.pool,
                obs: &config.obs,
            };
            selector.select(&state.remaining, &inputs)
        };
        let Some((selected, score)) = selection else {
            return LoopEnd::Stopped(StopReason::NoPath);
        };
        if watch == Some(selected) {
            return LoopEnd::WatchSelected;
        }
        // The winner's path comes straight from the cache: its exactness
        // is the invariant the dirty-set bookkeeping maintains. The
        // clone is the copy the solution owns either way.
        let path = selector.winner_path(selected).clone();
        apply_step(
            instance,
            config,
            b,
            state,
            record_steps.as_deref_mut(),
            selected,
            score,
            ln_d1,
            path,
        );
        let applied = &state
            .solution
            .routed
            .last()
            .expect("apply_step appends the routed path")
            .1;
        selector.after_step(selected, applied, &state.weights);
    }
}

/// Package a finished run state into an [`EpochOutcome`].
fn finish_outcome(
    config: &BoundedUfpConfig,
    had_ctx: bool,
    state: EpochRunState,
    stop_reason: StopReason,
    ln_guard: f64,
) -> EpochOutcome {
    let trace = RunTrace {
        records: state.records,
        ln_guard_threshold: ln_guard,
        stop_reason,
        certificate: if config.respect_residual || had_ctx {
            Certificate::None
        } else {
            Certificate::Claim36
        },
    };
    EpochOutcome {
        run: UfpRunResult {
            solution: state.solution,
            trace,
        },
        carry: state.carry.unwrap_or_default(),
    }
}

/// Run Algorithm 1 over one epoch of a long-lived network. `ctx` carries
/// the residual state; `None` reproduces the one-shot behavior exactly.
///
/// Per-epoch feasibility: with `B = min` *usable* residual capacity, the
/// Lemma 3.3 argument gives load `≤ c_e(B−1)/B + d ≤ c_e` on every edge
/// whenever every admitted demand satisfies `d ≤ c_e/B`, which holds for
/// normalized demands as long as unusable edges are exactly those with
/// residual below the caller's floor `≥ 1`. The streaming engine keeps
/// cumulative feasibility by induction over epochs.
pub fn bounded_ufp_epoch(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
) -> EpochOutcome {
    run_epoch(instance, config, ctx, None)
}

/// [`bounded_ufp_epoch`] that additionally records a per-step
/// [`EpochResumeTrace`]. The outcome is bit-identical to the untraced
/// run; the trace enables prefix-resumed counterfactual probes.
pub fn bounded_ufp_epoch_traced(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
) -> (EpochOutcome, EpochResumeTrace) {
    let mut trace = EpochResumeTrace::default();
    let outcome = run_epoch(instance, config, ctx, Some(&mut trace.steps));
    (outcome, trace)
}

fn run_epoch(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
    record_steps: Option<&mut Vec<ResumeStep>>,
) -> EpochOutcome {
    validate_epoch_inputs(instance, config, ctx);
    let b = epoch_bound_b(instance, ctx);
    let ln_guard = config.epsilon * (b - 1.0);
    let merged_mask = path_mask(ctx);
    let usable = merged_mask.as_deref().or(ctx.map(|c| c.usable));
    let mut state = EpochRunState::init(instance, ctx);
    let end = run_epoch_loop(
        instance,
        config,
        usable,
        b,
        ln_guard,
        &mut state,
        record_steps,
        None,
    );
    let LoopEnd::Stopped(stop_reason) = end else {
        unreachable!("unwatched runs always stop")
    };
    if config.obs.is_enabled() {
        // The paper's internal signals, gauged once per epoch run:
        // remaining guard headroom `ε(B−1) − ln D₁`, dual-weight
        // growth, and how often the log-sum-exp scale re-centered.
        // Counterfactual payment probes (the resume entry points) are
        // deliberately not gauged — they would drown the real epoch's
        // signal in replay noise.
        let obs = &config.obs;
        obs.gauge_set("core.guard_slack", ln_guard - state.weights.ln_dual_sum());
        obs.gauge_set("core.dual_weight_max_ln_y", state.weights.max_ln_y());
        obs.gauge_set("core.weight_recenters", state.weights.recenters() as f64);
        obs.counter_add("core.epoch_runs", 1);
        obs.counter_add("core.steps_applied", state.steps_done as u64);
    }
    finish_outcome(config, ctx.is_some(), state, stop_reason, ln_guard)
}

/// Resume an epoch run from `checkpoint` and drive it to completion.
///
/// Provided `instance` differs from the traced instance only in ways
/// that cannot alter the checkpointed prefix — in particular, lowering
/// the declared value of a request selected *at or after* the
/// checkpoint's step — the outcome is **bit-identical** to running
/// [`bounded_ufp_epoch`] on `instance` from scratch with the same
/// `config` and `ctx` (which must match the traced run).
pub fn bounded_ufp_epoch_resume(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
    checkpoint: EpochCheckpoint,
) -> EpochOutcome {
    validate_epoch_inputs(instance, config, ctx);
    let b = epoch_bound_b(instance, ctx);
    let ln_guard = config.epsilon * (b - 1.0);
    let merged_mask = path_mask(ctx);
    let usable = merged_mask.as_deref().or(ctx.map(|c| c.usable));
    let mut state = checkpoint.state;
    let end = run_epoch_loop(
        instance, config, usable, b, ln_guard, &mut state, None, None,
    );
    let LoopEnd::Stopped(stop_reason) = end else {
        unreachable!("unwatched runs always stop")
    };
    finish_outcome(config, ctx.is_some(), state, stop_reason, ln_guard)
}

/// Resume an epoch run from `checkpoint`, watching for `watch`.
///
/// Returns `Some(deeper)` — the state frozen at the top of the iteration
/// that selects `watch` (the step itself *not* applied) — as soon as the
/// continued run would select it, or `None` if the run stops without
/// selecting it. The returned checkpoint is a valid resume point for any
/// further probe that declares `watch` at a *lower* value than this run
/// did (its score only rises, so the shared prefix only grows), which
/// lets bisection advance its checkpoint monotonically toward the
/// critical step.
pub fn bounded_ufp_epoch_resume_watch(
    instance: &UfpInstance,
    config: &BoundedUfpConfig,
    ctx: Option<&EpochContext<'_>>,
    checkpoint: EpochCheckpoint,
    watch: RequestId,
) -> Option<EpochCheckpoint> {
    validate_epoch_inputs(instance, config, ctx);
    let b = epoch_bound_b(instance, ctx);
    let ln_guard = config.epsilon * (b - 1.0);
    let merged_mask = path_mask(ctx);
    let usable = merged_mask.as_deref().or(ctx.map(|c| c.usable));
    let mut state = checkpoint.state;
    match run_epoch_loop(
        instance,
        config,
        usable,
        b,
        ln_guard,
        &mut state,
        None,
        Some(watch),
    ) {
        LoopEnd::WatchSelected => Some(EpochCheckpoint { state }),
        LoopEnd::Stopped(_) => None,
    }
}

/// Shortest-path *distances* for all remaining requests, one Dijkstra
/// per *distinct source* (requests sharing a source reuse the tree),
/// fanned out over the pool. Results are flattened in (source-group,
/// request) order, which is ascending request id within groups.
/// Group requests by source vertex, deterministically: sorted by
/// `(src, id)`, so within each group ids ascend and groups ascend by
/// source. Both the main loop's distance fan-out and the repetitions
/// variant derive their query order — and therefore the argmin
/// tie-break order — from this one function.
pub(crate) fn group_by_source(
    instance: &UfpInstance,
    remaining: &[RequestId],
) -> Vec<(NodeId, Vec<RequestId>)> {
    let mut sorted: Vec<RequestId> = remaining.to_vec();
    sorted.sort_unstable_by_key(|r| (instance.request(*r).src, *r));
    let mut groups: Vec<(NodeId, Vec<RequestId>)> = Vec::new();
    for r in sorted {
        let src = instance.request(r).src;
        match groups.last_mut() {
            Some((s, members)) if *s == src => members.push(r),
            _ => groups.push((src, vec![r])),
        }
    }
    groups
}

/// When `collect_paths` is set, the second vector holds the realizing
/// path of each finding, index-aligned with the first; otherwise it is
/// empty and the caller re-derives the one path it needs. Keeping paths
/// out of [`PathFinding`] keeps the per-iteration findings rebuild at
/// 16 bytes per remaining request in the (large-epoch) distances-only
/// mode.
fn shortest_findings_grouped(
    instance: &UfpInstance,
    remaining: &[RequestId],
    weights: &DualWeights,
    usable: Option<&[bool]>,
    pool: &Pool,
    collect_paths: bool,
) -> (Vec<PathFinding>, Vec<Path>) {
    let graph = instance.graph();
    let groups = group_by_source(instance, remaining);
    let w = weights.weights();
    let per_group: Vec<(Vec<PathFinding>, Vec<Path>)> = pool.map_with(
        &groups,
        || (Dijkstra::new(graph.num_nodes()), Path::trivial(NodeId(0))),
        |(dij, pbuf), _, (src, members)| {
            let targets: Vec<NodeId> = members.iter().map(|r| instance.request(*r).dst).collect();
            dij.run(graph, w, *src, Targets::Set(&targets), |e| {
                usable.is_none_or(|u| u[e.index()])
            });
            let mut findings = Vec::with_capacity(members.len());
            let mut paths = Vec::new();
            for &r in members.iter() {
                let dst = instance.request(r).dst;
                let Some(dist) = dij.distance(dst) else {
                    continue;
                };
                if collect_paths {
                    // Reconstruct into the worker's reusable buffer,
                    // then clone exact-sized into the result.
                    assert!(dij.path_to_into(dst, pbuf), "settled target has a path");
                    paths.push(pbuf.clone());
                }
                findings.push(PathFinding { request: r, dist });
            }
            (findings, paths)
        },
    );
    let mut findings = Vec::new();
    let mut paths = Vec::new();
    for (f, p) in per_group {
        findings.extend(f);
        paths.extend(p);
    }
    (findings, paths)
}

/// Full paths-for-everyone variant, shared with the repetitions
/// algorithm (which routes *every* queried request, so it really does
/// need all the paths).
pub(crate) fn shortest_paths_grouped_for_repeat(
    instance: &UfpInstance,
    remaining: &[RequestId],
    weights: &DualWeights,
    pool: &Pool,
) -> Vec<(RequestId, f64, Path)> {
    let graph = instance.graph();
    let groups = group_by_source(instance, remaining);
    let w = weights.weights();
    let per_group: Vec<Vec<(RequestId, f64, Path)>> = pool.map_with(
        &groups,
        || (Dijkstra::new(graph.num_nodes()), Path::trivial(NodeId(0))),
        |(dij, pbuf), _, (src, members)| {
            let targets: Vec<NodeId> = members.iter().map(|r| instance.request(*r).dst).collect();
            dij.run(graph, w, *src, Targets::Set(&targets), |_| true);
            members
                .iter()
                .filter_map(|&r| {
                    let dst = instance.request(r).dst;
                    let dist = dij.distance(dst)?;
                    dij.path_to_into(dst, pbuf).then(|| (r, dist, pbuf.clone()))
                })
                .collect()
        },
    );
    per_group.into_iter().flatten().collect()
}

/// Residual-capacity variant: the edge filter depends on each request's
/// demand, so requests are queried individually. Follows the same
/// `collect_paths` cost model as [`shortest_findings_grouped`]: below
/// the one-reconstruction-per-node threshold the realizing paths come
/// back inline (second vector, index-aligned with the findings) and the
/// caller skips the winner's targeted re-derivation.
#[allow(clippy::too_many_arguments)]
fn shortest_findings_residual(
    instance: &UfpInstance,
    remaining: &[RequestId],
    weights: &DualWeights,
    residual: &[f64],
    usable: Option<&[bool]>,
    pool: &Pool,
    collect_paths: bool,
) -> (Vec<PathFinding>, Vec<Path>) {
    let graph = instance.graph();
    let w = weights.weights();
    let mut sorted: Vec<RequestId> = remaining.to_vec();
    sorted.sort_unstable();
    let results: Vec<Option<(PathFinding, Option<Path>)>> = pool.map_with(
        &sorted,
        || (Dijkstra::new(graph.num_nodes()), Path::trivial(NodeId(0))),
        |(dij, pbuf), _, &r| {
            let req = instance.request(r);
            dij.run(graph, w, req.src, Targets::One(req.dst), |e| {
                usable.is_none_or(|u| u[e.index()]) && residual[e.index()] >= req.demand - 1e-12
            });
            let dist = dij.distance(req.dst)?;
            let path = collect_paths.then(|| {
                assert!(dij.path_to_into(req.dst, pbuf), "settled target");
                pbuf.clone()
            });
            Some((PathFinding { request: r, dist }, path))
        },
    );
    let mut findings = Vec::new();
    let mut paths = Vec::new();
    for (finding, path) in results.into_iter().flatten() {
        findings.push(finding);
        if let Some(p) = path {
            paths.push(p);
        }
    }
    (findings, paths)
}

/// Re-derive the selected request's path with one targeted Dijkstra,
/// into a reusable buffer (allocation-free after warm-up). Bit-identical
/// to the path the fan-out would have reconstructed: pop order and
/// parent pointers depend only on (graph, weights, source, filter),
/// never on the target set, and every ancestor of the target is settled
/// before it.
fn chosen_path_into(
    scratch: &mut Dijkstra,
    out: &mut Path,
    instance: &UfpInstance,
    weights: &DualWeights,
    residual_gate: Option<&[f64]>,
    usable: Option<&[bool]>,
    r: RequestId,
) {
    let graph = instance.graph();
    let req = instance.request(r);
    let w = weights.weights();
    scratch.run(graph, w, req.src, Targets::One(req.dst), |e| {
        usable.is_none_or(|u| u[e.index()])
            && residual_gate.is_none_or(|res| res[e.index()] >= req.demand - 1e-12)
    });
    let found = scratch.path_to_into(req.dst, out);
    assert!(
        found,
        "argmin request must have a path under the query weights"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A wide single edge easily fits everything.
    #[test]
    fn routes_everything_when_capacity_abounds() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 100.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..10)
                .map(|_| Request::new(n(0), n(1), 1.0, 1.0))
                .collect(),
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        assert_eq!(res.solution.len(), 10);
        assert_eq!(res.trace.stop_reason, StopReason::Exhausted);
        assert!(res.solution.check_feasible(&inst, false).is_ok());
    }

    #[test]
    fn output_is_always_capacity_feasible() {
        // Lemma 3.3: the guard alone keeps the output feasible, even with
        // far more demand than capacity.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..100)
                .map(|i| Request::new(n(0), n(1), 1.0, 1.0 + (i % 7) as f64))
                .collect(),
        );
        for eps in [0.1, 0.3, 0.5, 1.0] {
            let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
            assert!(
                res.solution.check_feasible(&inst, false).is_ok(),
                "eps={eps}: infeasible output"
            );
            assert!(res.solution.len() <= 10, "eps={eps}: capacity is 10");
        }
    }

    #[test]
    fn prefers_high_value_per_demand() {
        // One slot: capacity exactly fits one unit-demand request. The
        // request with the lowest d/v (= highest value) must win.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 2.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 10.0),
                Request::new(n(0), n(1), 1.0, 3.0),
            ],
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        assert!(res.solution.contains(crate::request::RequestId(1)));
        // first pick is the most valuable request
        assert_eq!(res.solution.routed[0].0, crate::request::RequestId(1));
    }

    #[test]
    fn avoids_congested_edges() {
        // Diamond: after loading the top path, the algorithm should route
        // via the bottom.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 20.0); // top
        gb.add_edge(n(1), n(3), 20.0);
        gb.add_edge(n(0), n(2), 20.0); // bottom
        gb.add_edge(n(2), n(3), 20.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..30)
                .map(|_| Request::new(n(0), n(3), 1.0, 1.0))
                .collect(),
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        assert!(res.solution.check_feasible(&inst, false).is_ok());
        // both paths must be used — one path alone holds only 20
        assert!(
            res.solution.len() > 20,
            "routed {} requests",
            res.solution.len()
        );
        let loads = res.solution.edge_loads(&inst);
        assert!(loads[0] > 0.0 && loads[2] > 0.0, "loads {loads:?}");
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut gb = GraphBuilder::directed(6);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    gb.add_edge(n(i), n(j), 8.0);
                }
            }
            gb.add_edge(n(i), n(5), 8.0);
        }
        let inst = UfpInstance::new(
            gb.build(),
            (0..40)
                .map(|i| {
                    Request::new(
                        n(i % 5),
                        n(5),
                        0.5 + 0.1 * ((i % 4) as f64),
                        1.0 + (i % 9) as f64,
                    )
                })
                .collect(),
        );
        let seq = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.3));
        let par = bounded_ufp(
            &inst,
            &BoundedUfpConfig::with_epsilon(0.3).parallel(Pool::new(4)),
        );
        assert_eq!(seq.solution.routed.len(), par.solution.routed.len());
        for (a, b) in seq.solution.routed.iter().zip(&par.solution.routed) {
            assert_eq!(a.0, b.0, "selection order must match");
            assert_eq!(a.1.nodes(), b.1.nodes(), "paths must match");
        }
    }

    #[test]
    fn dual_certificate_bounds_the_optimum() {
        // OPT here is exactly 10 (capacity 10, unit demands, unit values).
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..30)
                .map(|_| Request::new(n(0), n(1), 1.0, 1.0))
                .collect(),
        );
        let res = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.4));
        let bound = res.dual_upper_bound().expect("certificate applies");
        assert!(bound >= 10.0 - 1e-6, "dual bound {bound} below OPT 10");
        let ratio = res.certified_ratio(&inst).unwrap();
        assert!(ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn disconnected_requests_stop_cleanly() {
        let gb = GraphBuilder::directed(4);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 1.0, 1.0)]);
        let res = bounded_ufp(&inst, &BoundedUfpConfig::default());
        assert!(res.solution.is_empty());
        assert_eq!(res.trace.stop_reason, StopReason::NoPath);
    }

    #[test]
    fn residual_mode_is_feasible_and_certificate_free() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 3.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..9).map(|_| Request::new(n(0), n(1), 1.0, 1.0)).collect(),
        );
        let mut cfg = BoundedUfpConfig::with_epsilon(0.5);
        cfg.respect_residual = true;
        let res = bounded_ufp(&inst, &cfg);
        assert!(res.solution.check_feasible(&inst, false).is_ok());
        assert_eq!(res.solution.len(), 3);
        assert!(res.dual_upper_bound().is_none());
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn rejects_unnormalized_instances() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 10.0);
        let inst = UfpInstance::new(gb.build(), vec![Request::new(n(0), n(1), 2.0, 1.0)]);
        bounded_ufp(&inst, &BoundedUfpConfig::default());
    }

    #[test]
    fn trivial_epoch_context_is_bit_identical_to_one_shot() {
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 12.0);
        gb.add_edge(n(1), n(3), 9.0);
        gb.add_edge(n(0), n(2), 11.0);
        gb.add_edge(n(2), n(3), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..25)
                .map(|i| {
                    Request::new(
                        n(0),
                        n(3),
                        0.5 + 0.05 * (i % 10) as f64,
                        1.0 + (i % 4) as f64,
                    )
                })
                .collect(),
        );
        let cfg = BoundedUfpConfig::with_epsilon(0.4);
        let one_shot = bounded_ufp(&inst, &cfg);
        let caps: Vec<f64> = inst.graph().edges().iter().map(|e| e.capacity).collect();
        let usable = vec![true; caps.len()];
        let carry = vec![0.0; caps.len()];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let epoch = bounded_ufp_epoch(&inst, &cfg, Some(&ctx));
        assert_eq!(
            one_shot.solution.routed.len(),
            epoch.run.solution.routed.len()
        );
        for (a, b) in one_shot
            .solution
            .routed
            .iter()
            .zip(&epoch.run.solution.routed)
        {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.nodes(), b.1.nodes());
        }
        // Carry must record exactly the line-10 exponents of this run.
        let loads = epoch.run.solution.edge_loads(&inst);
        for (e, &k) in epoch.carry.iter().enumerate() {
            let expected = 0.4 * inst.graph().min_capacity() * loads[e] / caps[e];
            assert!(
                (k - expected).abs() < 1e-9,
                "edge {e}: carry {k} != {expected}"
            );
        }
    }

    #[test]
    fn saturated_edges_do_not_stall_the_epoch() {
        // Edge 0 is saturated (residual 0, unusable); the bottom path must
        // still admit traffic even though min-over-all-residuals is 0.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 10.0); // saturated top
        gb.add_edge(n(1), n(3), 10.0);
        gb.add_edge(n(0), n(2), 10.0); // free bottom
        gb.add_edge(n(2), n(3), 10.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..6).map(|_| Request::new(n(0), n(3), 1.0, 1.0)).collect(),
        );
        let caps = [0.0, 10.0, 10.0, 10.0];
        let usable = [false, true, true, true];
        let carry = [0.0; 4];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let cfg = BoundedUfpConfig::with_epsilon(0.5);
        let epoch = bounded_ufp_epoch(&inst, &cfg, Some(&ctx));
        assert!(!epoch.run.solution.is_empty(), "bottom path should admit");
        let loads = epoch.run.solution.edge_loads(&inst);
        assert_eq!(loads[0], 0.0, "saturated edge must stay untouched");
        assert!(loads[2] > 0.0);
    }

    #[test]
    fn carried_weights_steer_later_epochs() {
        // Same diamond; heavy carry on the top path pushes epoch-2 routes
        // to the bottom even with full residual capacity everywhere.
        let mut gb = GraphBuilder::directed(4);
        gb.add_edge(n(0), n(1), 20.0);
        gb.add_edge(n(1), n(3), 20.0);
        gb.add_edge(n(0), n(2), 20.0);
        gb.add_edge(n(2), n(3), 20.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..4).map(|_| Request::new(n(0), n(3), 1.0, 1.0)).collect(),
        );
        let caps = [20.0; 4];
        let usable = [true; 4];
        let carry = [5.0, 5.0, 0.0, 0.0];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let cfg = BoundedUfpConfig::with_epsilon(0.5);
        let epoch = bounded_ufp_epoch(&inst, &cfg, Some(&ctx));
        let loads = epoch.run.solution.edge_loads(&inst);
        assert!(
            loads[0] == 0.0 && loads[2] > 0.0,
            "carry ignored: {loads:?}"
        );
    }

    /// A congested diamond with heterogeneous requests — enough structure
    /// that selections, guard stops, and paths all come into play.
    fn resume_fixture() -> (UfpInstance, BoundedUfpConfig) {
        let mut gb = GraphBuilder::directed(5);
        gb.add_edge(n(0), n(1), 9.0);
        gb.add_edge(n(1), n(4), 8.0);
        gb.add_edge(n(0), n(2), 10.0);
        gb.add_edge(n(2), n(4), 9.0);
        gb.add_edge(n(0), n(3), 7.0);
        gb.add_edge(n(3), n(4), 7.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..22)
                .map(|i| {
                    Request::new(
                        n(0),
                        n(4),
                        0.4 + 0.06 * (i % 9) as f64,
                        0.8 + 0.9 * ((i * 7) % 11) as f64,
                    )
                })
                .collect(),
        );
        (inst, BoundedUfpConfig::with_epsilon(0.4))
    }

    fn assert_outcomes_identical(a: &EpochOutcome, b: &EpochOutcome) {
        assert_eq!(a.run.solution.routed.len(), b.run.solution.routed.len());
        for (x, y) in a.run.solution.routed.iter().zip(&b.run.solution.routed) {
            assert_eq!(x.0, y.0, "selection order diverged");
            assert_eq!(x.1.nodes(), y.1.nodes(), "paths diverged");
        }
        assert_eq!(a.run.trace.stop_reason, b.run.trace.stop_reason);
        assert_eq!(a.run.trace.records.len(), b.run.trace.records.len());
        for (x, y) in a.run.trace.records.iter().zip(&b.run.trace.records) {
            assert_eq!(x.selected, y.selected);
            assert_eq!(x.ln_alpha.to_bits(), y.ln_alpha.to_bits());
            assert_eq!(x.ln_d1.to_bits(), y.ln_d1.to_bits());
            assert_eq!(
                x.routed_value_before.to_bits(),
                y.routed_value_before.to_bits()
            );
        }
        assert_eq!(a.carry.len(), b.carry.len());
        for (x, y) in a.carry.iter().zip(&b.carry) {
            assert_eq!(x.to_bits(), y.to_bits(), "carry diverged");
        }
    }

    #[test]
    fn traced_run_is_bit_identical_to_plain_run() {
        let (inst, cfg) = resume_fixture();
        let plain = bounded_ufp_epoch(&inst, &cfg, None);
        let (traced, trace) = bounded_ufp_epoch_traced(&inst, &cfg, None);
        assert_outcomes_identical(&plain, &traced);
        assert_eq!(trace.num_steps(), plain.run.solution.routed.len());
    }

    #[test]
    fn resume_from_any_prefix_is_bit_identical() {
        let (inst, cfg) = resume_fixture();
        let caps: Vec<f64> = inst.graph().edges().iter().map(|e| e.capacity).collect();
        let usable = vec![true; caps.len()];
        let carry = vec![0.1; caps.len()];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let (full, trace) = bounded_ufp_epoch_traced(&inst, &cfg, Some(&ctx));
        for prefix in 0..=trace.num_steps() {
            let ckpt = trace.checkpoint(&inst, &cfg, Some(&ctx), prefix);
            assert_eq!(ckpt.steps(), prefix);
            let resumed = bounded_ufp_epoch_resume(&inst, &cfg, Some(&ctx), ckpt);
            assert_outcomes_identical(&full, &resumed);
        }
    }

    #[test]
    fn lowered_value_probe_resumes_bit_identically() {
        // The payment-probe contract: lower a winner's declared value,
        // resume from its selection step — identical outcome to a full
        // re-run on the probed instance.
        let (inst, cfg) = resume_fixture();
        let (full, trace) = bounded_ufp_epoch_traced(&inst, &cfg, None);
        for (rid, _) in &full.run.solution.routed {
            let k = trace.selection_step(*rid).unwrap();
            let declared = inst.request(*rid).value;
            for factor in [0.9, 0.5, 0.11, 0.01] {
                let probe =
                    inst.with_declared_type(*rid, inst.request(*rid).demand, declared * factor);
                let scratch = bounded_ufp_epoch(&probe, &cfg, None);
                let ckpt = trace.checkpoint(&probe, &cfg, None, k);
                let resumed = bounded_ufp_epoch_resume(&probe, &cfg, None, ckpt);
                assert_outcomes_identical(&scratch, &resumed);
            }
        }
    }

    #[test]
    fn watch_mode_agrees_with_full_membership_and_deepens() {
        let (inst, cfg) = resume_fixture();
        let (full, trace) = bounded_ufp_epoch_traced(&inst, &cfg, None);
        for (rid, _) in &full.run.solution.routed {
            let k = trace.selection_step(*rid).unwrap();
            let declared = inst.request(*rid).value;
            let base = trace.checkpoint(&inst, &cfg, None, k);
            let mut last_selected_steps = k;
            for factor in [0.9, 0.6, 0.3, 0.05] {
                let probe =
                    inst.with_declared_type(*rid, inst.request(*rid).demand, declared * factor);
                let scratch = bounded_ufp_epoch(&probe, &cfg, None);
                let watched =
                    bounded_ufp_epoch_resume_watch(&probe, &cfg, None, base.clone(), *rid);
                assert_eq!(
                    watched.is_some(),
                    scratch.run.solution.contains(*rid),
                    "watch disagreed with full run for {rid:?} at {factor}x"
                );
                // Stripping the prefix outcome state (the per-probe cost
                // optimization) must not change membership answers or
                // step accounting.
                let stripped = bounded_ufp_epoch_resume_watch(
                    &probe,
                    &cfg,
                    None,
                    base.clone().strip_outcome_state(),
                    *rid,
                );
                assert_eq!(stripped.is_some(), watched.is_some());
                if let (Some(a), Some(b)) = (&watched, &stripped) {
                    assert_eq!(a.steps(), b.steps());
                }
                if let Some(deeper) = watched {
                    // Lower values push the selection step later, never
                    // earlier — the checkpoint advances monotonically.
                    assert!(deeper.steps() >= last_selected_steps);
                    last_selected_steps = deeper.steps();
                }
            }
        }
    }

    /// Reassemble a recorded trace step by step through the public
    /// [`EpochResumeTrace::push_step`] API — the merged-trace assembly
    /// path a sharded engine uses — from the read-only step views plus
    /// the run's iteration records.
    fn reassemble(full: &EpochOutcome, trace: &EpochResumeTrace) -> EpochResumeTrace {
        let mut rebuilt = EpochResumeTrace::default();
        for i in 0..trace.num_steps() {
            let s = trace.step(i);
            let rec = &full.run.trace.records[i];
            rebuilt.push_step(
                s.selected,
                s.ln_alpha,
                s.raw_score,
                rec.ln_d1,
                rec.routed_value_before,
                s.path.clone(),
                s.bumps.to_vec(),
            );
        }
        rebuilt
    }

    #[test]
    fn pushed_steps_checkpoint_and_resume_like_the_recorded_trace() {
        let (inst, cfg) = resume_fixture();
        let caps: Vec<f64> = inst.graph().edges().iter().map(|e| e.capacity).collect();
        let usable = vec![true; caps.len()];
        let carry = vec![0.1; caps.len()];
        let ctx = EpochContext {
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let (full, trace) = bounded_ufp_epoch_traced(&inst, &cfg, Some(&ctx));
        let rebuilt = reassemble(&full, &trace);
        assert_eq!(rebuilt.num_steps(), trace.num_steps());
        for prefix in 0..=rebuilt.num_steps() {
            let a = bounded_ufp_epoch_resume(
                &inst,
                &cfg,
                Some(&ctx),
                trace.checkpoint(&inst, &cfg, Some(&ctx), prefix),
            );
            let b = bounded_ufp_epoch_resume(
                &inst,
                &cfg,
                Some(&ctx),
                rebuilt.checkpoint(&inst, &cfg, Some(&ctx), prefix),
            );
            assert_outcomes_identical(&a, &b);
            let pa = trace.prefix_outcome(&inst, &cfg, Some(&ctx), prefix, StopReason::Guard);
            let pb = rebuilt.prefix_outcome(&inst, &cfg, Some(&ctx), prefix, StopReason::Guard);
            assert_outcomes_identical(&pa, &pb);
        }
    }

    #[test]
    fn probe_resume_over_a_pushed_trace_is_bit_identical() {
        // The global-payment contract: critical-value probes may bisect
        // against an externally assembled trace exactly as against the
        // engine-recorded one.
        let (inst, cfg) = resume_fixture();
        let (full, trace) = bounded_ufp_epoch_traced(&inst, &cfg, None);
        let rebuilt = reassemble(&full, &trace);
        for (rid, _) in &full.run.solution.routed {
            let k = rebuilt.selection_step(*rid).unwrap();
            assert_eq!(k, trace.selection_step(*rid).unwrap());
            let declared = inst.request(*rid).value;
            for factor in [0.9, 0.5, 0.11, 0.01] {
                let probe =
                    inst.with_declared_type(*rid, inst.request(*rid).demand, declared * factor);
                let scratch = bounded_ufp_epoch(&probe, &cfg, None);
                let ckpt = rebuilt.checkpoint(&probe, &cfg, None, k);
                let resumed = bounded_ufp_epoch_resume(&probe, &cfg, None, ckpt);
                assert_outcomes_identical(&scratch, &resumed);
                let watched = bounded_ufp_epoch_resume_watch(
                    &probe,
                    &cfg,
                    None,
                    rebuilt
                        .checkpoint(&probe, &cfg, None, k)
                        .strip_outcome_state(),
                    *rid,
                );
                assert_eq!(watched.is_some(), scratch.run.solution.contains(*rid));
            }
        }
    }

    #[test]
    fn raw_score_is_the_pre_ln_selection_key() {
        // The recorded raw score is the selection loop's own comparison
        // key: ln_alpha = ln(raw_score) + shift, so on a run that never
        // re-centers the offset is a single constant across all steps,
        // and argmin scores never decrease (weights only grow) — the two
        // properties the cross-shard merge tie-break leans on.
        let (inst, cfg) = resume_fixture();
        let (_, trace) = bounded_ufp_epoch_traced(&inst, &cfg, None);
        assert!(trace.num_steps() > 1);
        let shift = trace.step(0).ln_alpha - trace.step(0).raw_score.ln();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..trace.num_steps() {
            let s = trace.step(i);
            assert!(s.raw_score > 0.0 && s.raw_score.is_finite());
            assert!(
                (s.ln_alpha - s.raw_score.ln() - shift).abs() <= 1e-12 * shift.abs().max(1.0),
                "step {i}: ln_alpha is not ln(raw_score) + shift"
            );
            assert!(s.raw_score >= prev, "argmin scores must be nondecreasing");
            prev = s.raw_score;
        }
    }

    #[test]
    fn monotone_in_value_on_a_small_instance() {
        // Lemma 3.4 spot check: a selected request stays selected when its
        // value rises.
        let mut gb = GraphBuilder::directed(3);
        gb.add_edge(n(0), n(1), 4.0);
        gb.add_edge(n(1), n(2), 4.0);
        let base = vec![
            Request::new(n(0), n(2), 1.0, 2.0),
            Request::new(n(0), n(2), 1.0, 3.0),
            Request::new(n(0), n(1), 1.0, 1.0),
            Request::new(n(1), n(2), 0.7, 2.5),
        ];
        let inst = UfpInstance::new(gb.build(), base);
        let cfg = BoundedUfpConfig::with_epsilon(0.4);
        let res = bounded_ufp(&inst, &cfg);
        for rid in inst.request_ids() {
            if !res.solution.contains(rid) {
                continue;
            }
            for factor in [1.1, 2.0, 10.0] {
                let v = inst.request(rid).value * factor;
                let probe = inst.with_declared_type(rid, inst.request(rid).demand, v);
                let res2 = bounded_ufp(&probe, &cfg);
                assert!(
                    res2.solution.contains(rid),
                    "raising value of {rid} by {factor} dropped it"
                );
            }
        }
    }
}
