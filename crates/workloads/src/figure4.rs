//! The Figure 4 construction (Theorem 4.5): the auction instance showing
//! a 4/3 lower bound for every reasonable iterative bundle-minimizing
//! algorithm.
//!
//! Items `U` are partitioned into `p·(p+1)` cells `U_{i,j}` (`i = 1..p`,
//! `j = 1..p+1`), each of `m/(p(p+1))` items, all with multiplicity `B`.
//! Unit-value bids:
//!
//! * **Type 1** — for each row `ℓ`: `B/2` bids on `U_ℓ = ∪_j U_{ℓ,j}`.
//! * **Type 2** — for each column pair `ℓ = 1..(p+1)/2`: `B/2` bids on
//!   `U_{1,2ℓ−1} ∪ U_{1,2ℓ} ∪ ∪_{i≥2} U_{i,2ℓ−1}` and `B/2` bids on
//!   `U_{1,2ℓ−1} ∪ U_{1,2ℓ} ∪ ∪_{i≥2} U_{i,2ℓ}`.
//!
//! Every bundle has exactly `m/p` items, so all bids are score-tied at
//! every symmetric state and the tie-break drives the schedule: with
//! type-1 bids listed first, lowest-id tie-breaking makes the engine
//! allocate all of them (`p·B/2` value), after which counting caps the
//! total at `(3p+1)·B/4`, against `OPT = p·B` — ratio `4p/(3p+1) → 4/3`.

use ufp_auction::{AuctionInstance, Bid, ItemId};

/// Build the Figure 4 instance. Requirements: odd `p ≥ 3`, even `b ≥ 2`,
/// and `m` a positive multiple of `p(p+1)` (pass `m = p·(p+1)` for the
/// smallest version, one item per cell).
pub fn figure4(p: usize, b: usize, m: usize) -> AuctionInstance {
    assert!(p >= 3 && p % 2 == 1, "Figure 4 needs odd p ≥ 3");
    assert!(b >= 2 && b.is_multiple_of(2), "Figure 4 needs even B ≥ 2");
    assert!(
        m >= p * (p + 1) && m.is_multiple_of(p * (p + 1)),
        "m must be a positive multiple of p(p+1)"
    );
    let cell = m / (p * (p + 1));
    // Cell (i, j), 1-based, holds items [start, start+cell).
    let cell_items = |i: usize, j: usize| -> Vec<ItemId> {
        let idx = (i - 1) * (p + 1) + (j - 1);
        let start = idx * cell;
        (start..start + cell).map(|u| ItemId(u as u32)).collect()
    };

    let mut bids = Vec::new();
    // Type 1: rows.
    for row in 1..=p {
        let mut bundle = Vec::with_capacity(cell * (p + 1));
        for j in 1..=p + 1 {
            bundle.extend(cell_items(row, j));
        }
        for _ in 0..b / 2 {
            bids.push(Bid::new(bundle.clone(), 1.0));
        }
    }
    // Type 2: column pairs, two variants each.
    for pair in 1..=p.div_ceil(2) {
        let (ca, cb) = (2 * pair - 1, 2 * pair);
        for variant in 0..2 {
            let col = if variant == 0 { ca } else { cb };
            let mut bundle = Vec::new();
            bundle.extend(cell_items(1, ca));
            bundle.extend(cell_items(1, cb));
            for i in 2..=p {
                bundle.extend(cell_items(i, col));
            }
            for _ in 0..b / 2 {
                bids.push(Bid::new(bundle.clone(), 1.0));
            }
        }
    }
    AuctionInstance::new(vec![b as f64; m], bids)
}

/// `OPT = p·B` (drop only the `B/2` row-1 bids).
pub fn figure4_optimum(p: usize, b: usize) -> f64 {
    (p * b) as f64
}

/// The adversarial engine's ceiling `(3p+1)·B/4`.
pub fn figure4_algorithm_bound(p: usize, b: usize) -> f64 {
    (3 * p + 1) as f64 * b as f64 / 4.0
}

/// The lower-bound ratio `4p/(3p+1)`, approaching 4/3.
pub fn figure4_predicted_ratio(p: usize) -> f64 {
    4.0 * p as f64 / (3 * p + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_auction::AuctionSolution;

    #[test]
    fn structure() {
        let a = figure4(3, 4, 12);
        assert_eq!(a.num_items(), 12);
        // type-1: 3 rows × B/2 = 6; type-2: 2 pairs × 2 variants × 2 = 8
        assert_eq!(a.num_bids(), 14);
        assert_eq!(a.bound_b(), 4.0);
        // every bundle has m/p = 4 items
        for bid in a.bids() {
            assert_eq!(bid.size(), 4);
            assert_eq!(bid.value, 1.0);
        }
    }

    #[test]
    fn optimum_allocation_is_feasible() {
        // Select everything except the row-1 type-1 bids: value pB.
        let (p, b) = (3usize, 4usize);
        let a = figure4(p, b, 12);
        let winners: Vec<_> = a
            .bid_ids()
            .enumerate()
            .filter(|(i, _)| *i >= b / 2) // skip the B/2 row-1 bids
            .map(|(_, id)| id)
            .collect();
        let sol = AuctionSolution { winners };
        assert!(sol.check_feasible(&a).is_ok());
        assert_eq!(sol.value(&a), figure4_optimum(p, b));
    }

    #[test]
    fn optimum_matches_exact_solver() {
        let a = figure4(3, 2, 12);
        let (opt, sol) = ufp_auction::exact_auction_optimum(&a);
        assert_eq!(opt, figure4_optimum(3, 2));
        assert!(sol.check_feasible(&a).is_ok());
    }

    #[test]
    fn predicted_ratio_tends_to_4_thirds() {
        assert!((figure4_predicted_ratio(3) - 1.2).abs() < 1e-12);
        assert!((figure4_predicted_ratio(101) - 4.0 / 3.0).abs() < 0.005);
        assert!(figure4_predicted_ratio(5) < figure4_predicted_ratio(101));
    }

    #[test]
    fn scaled_m_keeps_bundle_proportions() {
        let a = figure4(3, 2, 24); // two items per cell
        for bid in a.bids() {
            assert_eq!(bid.size(), 8); // m/p = 8
        }
    }

    #[test]
    #[should_panic]
    fn even_p_rejected() {
        figure4(4, 2, 20);
    }
}
