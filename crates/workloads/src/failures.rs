//! Failure-trace generators for the dynamic-topology repair pass.
//!
//! Where [`crate::arrivals`] generates the *demand* side of a streaming
//! run, this module generates the *infrastructure* side: per-epoch
//! batches of [`TopologyEvent`]s following the classic failure shapes —
//!
//! * **random link flaps** — independent Poisson-arriving link failures,
//!   each scheduled to recover after a fixed down-time;
//! * **capacity resizes** — independent Poisson-arriving rescales of a
//!   link's capacity by a random factor (both shrinks, which can force
//!   evictions, and growths, which only add headroom);
//! * **correlated regional outages** — all links within a BFS radius of
//!   a random epicenter fail together and recover together, the
//!   shared-conduit / shared-power failure mode independent flaps
//!   cannot model;
//! * **planned drain windows** — scheduled node maintenance: a drain at
//!   the window's start, the undrain at its end (drains never evict,
//!   they only block new admissions through the node).
//!
//! Every generator is a deterministic function of its seed, every
//! emitted event is valid against the base graph by construction
//! (replaying the whole trace through [`Topology::replay`] succeeds),
//! and failure/recovery events are *paired*: a link is never downed
//! twice without an intervening recovery, so the trace applies cleanly
//! to any engine mirroring the same overlay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::{EdgeId, NodeId};
use ufp_netgraph::topology::TopologyEvent;

use crate::arrivals::poisson_count;

/// One planned maintenance window: `node` is drained at the start of
/// epoch `start` and undrained after `duration` epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainWindow {
    /// Node under maintenance.
    pub node: NodeId,
    /// First epoch (0-based) the drain is in force.
    pub start: u32,
    /// Window length in epochs (≥ 1).
    pub duration: u32,
}

/// Configuration of [`failure_trace`].
#[derive(Clone, Debug)]
pub struct FailureTraceConfig {
    /// Epochs to generate.
    pub epochs: u32,
    /// RNG seed — the trace is a deterministic function of it.
    pub seed: u64,
    /// Expected independent link flaps per epoch (Poisson; 0 disables).
    pub flap_rate: f64,
    /// Epochs a flapped link stays down before its scheduled recovery
    /// (≥ 1).
    pub flap_down_epochs: u32,
    /// Expected capacity resizes per epoch (Poisson; 0 disables).
    pub resize_rate: f64,
    /// Resize factor range `[lo, hi]` applied to the link's *current*
    /// effective size; both bounds must be positive and finite.
    pub resize_range: (f64, f64),
    /// Per-epoch probability of a correlated regional outage starting
    /// (at most one per epoch; 0 disables).
    pub outage_rate: f64,
    /// BFS radius (hops from the epicenter node) of an outage region.
    pub outage_radius: u32,
    /// Epochs an outage region stays down (≥ 1).
    pub outage_down_epochs: u32,
    /// Planned maintenance windows.
    pub drains: Vec<DrainWindow>,
}

impl Default for FailureTraceConfig {
    fn default() -> Self {
        FailureTraceConfig {
            epochs: 0,
            seed: 0,
            flap_rate: 0.0,
            flap_down_epochs: 2,
            resize_rate: 0.0,
            resize_range: (0.5, 1.5),
            outage_rate: 0.0,
            outage_radius: 1,
            outage_down_epochs: 2,
            drains: Vec::new(),
        }
    }
}

impl FailureTraceConfig {
    /// Validate field ranges.
    pub fn validate(&self) {
        assert!(
            self.flap_rate >= 0.0 && self.flap_rate.is_finite(),
            "flap_rate must be finite and non-negative"
        );
        assert!(self.flap_down_epochs >= 1, "flap_down_epochs must be >= 1");
        assert!(
            self.resize_rate >= 0.0 && self.resize_rate.is_finite(),
            "resize_rate must be finite and non-negative"
        );
        let (lo, hi) = self.resize_range;
        assert!(
            lo > 0.0 && hi >= lo && hi.is_finite(),
            "resize_range must satisfy 0 < lo <= hi < inf"
        );
        assert!(
            (0.0..=1.0).contains(&self.outage_rate),
            "outage_rate must lie in [0, 1]"
        );
        assert!(
            self.outage_down_epochs >= 1,
            "outage_down_epochs must be >= 1"
        );
        for d in &self.drains {
            assert!(d.duration >= 1, "drain window duration must be >= 1");
        }
    }
}

/// Nodes within `radius` BFS hops of `center` (inclusive of `center`).
fn bfs_region(graph: &Graph, center: NodeId, radius: u32) -> Vec<bool> {
    let mut seen = vec![false; graph.num_nodes()];
    seen[center.index()] = true;
    let mut frontier = vec![center];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for adj in graph.neighbors(v) {
                if !seen[adj.to.index()] {
                    seen[adj.to.index()] = true;
                    next.push(adj.to);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// Generate a deterministic failure trace over `graph`: one
/// [`TopologyEvent`] batch per epoch, `config.epochs` batches total
/// (batches may be empty — most epochs are quiet at realistic rates).
///
/// Per epoch, events are emitted in a fixed order: scheduled recoveries
/// (link-ups of lapsed flaps and outages, in edge order; undrains of
/// lapsed windows), then new drain windows, then fresh link flaps, then
/// fresh capacity resizes, then at most one fresh regional outage.
/// Failure state is tracked so events always pair (no double-down, no
/// resize of a down link, no double-drain); recoveries scheduled past
/// the last epoch are dropped — the trace simply ends with those links
/// still down, which drivers surface as terminal `links_down`.
pub fn failure_trace(graph: &Graph, config: &FailureTraceConfig) -> Vec<Vec<TopologyEvent>> {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = graph.num_edges();
    let n = graph.num_nodes();
    let mut up = vec![true; m];
    let mut drained = vec![false; n];
    // Recovery schedules: epoch → edges / nodes to bring back, kept in
    // emission order (edge order within a batch, batch order by start).
    let mut link_recovery: std::collections::BTreeMap<u32, Vec<EdgeId>> = Default::default();
    let mut undrain_at: std::collections::BTreeMap<u32, Vec<NodeId>> = Default::default();
    let mut trace = Vec::with_capacity(config.epochs as usize);
    for t in 0..config.epochs {
        let mut events = Vec::new();

        // 1. Scheduled recoveries.
        if let Some(edges) = link_recovery.remove(&t) {
            for e in edges {
                if !up[e.index()] {
                    up[e.index()] = true;
                    events.push(TopologyEvent::LinkUp { edge: e });
                }
            }
        }
        if let Some(nodes) = undrain_at.remove(&t) {
            for v in nodes {
                if drained[v.index()] {
                    drained[v.index()] = false;
                    events.push(TopologyEvent::UndrainNode { node: v });
                }
            }
        }

        // 2. Planned drain windows opening this epoch.
        for d in &config.drains {
            if d.start == t && d.node.index() < n && !drained[d.node.index()] {
                drained[d.node.index()] = true;
                events.push(TopologyEvent::DrainNode { node: d.node });
                undrain_at
                    .entry(t.saturating_add(d.duration))
                    .or_default()
                    .push(d.node);
            }
        }

        // 3. Independent link flaps.
        let flaps = poisson_count(config.flap_rate, &mut rng);
        for _ in 0..flaps {
            let candidates: Vec<usize> = (0..m).filter(|&e| up[e]).collect();
            if candidates.is_empty() {
                break;
            }
            let e = candidates[rng.random_range(0..candidates.len())];
            up[e] = false;
            events.push(TopologyEvent::LinkDown {
                edge: EdgeId(e as u32),
            });
            link_recovery
                .entry(t.saturating_add(config.flap_down_epochs))
                .or_default()
                .push(EdgeId(e as u32));
        }

        // 4. Capacity resizes (up links only; a down link's size change
        //    would be invisible until recovery anyway).
        let resizes = poisson_count(config.resize_rate, &mut rng);
        if resizes > 0 {
            // Track each edge's current size so successive resizes
            // compound deterministically.
            for _ in 0..resizes {
                let candidates: Vec<usize> = (0..m).filter(|&e| up[e]).collect();
                if candidates.is_empty() {
                    break;
                }
                let e = candidates[rng.random_range(0..candidates.len())];
                let (lo, hi) = config.resize_range;
                let factor = if lo == hi {
                    lo
                } else {
                    rng.random_range(lo..hi)
                };
                let current = current_capacity(graph, &trace, &events, e);
                let resized = (current * factor).max(f64::MIN_POSITIVE);
                events.push(TopologyEvent::SetCapacity {
                    edge: EdgeId(e as u32),
                    capacity: resized,
                });
            }
        }

        // 5. Correlated regional outage (at most one per epoch).
        if config.outage_rate > 0.0 && rng.random_range(0.0..1.0) < config.outage_rate && n > 0 {
            let center = NodeId(rng.random_range(0..n as u32));
            let region = bfs_region(graph, center, config.outage_radius);
            for (e, edge) in graph.edges().iter().enumerate() {
                if up[e] && (region[edge.src.index()] || region[edge.dst.index()]) {
                    up[e] = false;
                    events.push(TopologyEvent::LinkDown {
                        edge: EdgeId(e as u32),
                    });
                    link_recovery
                        .entry(t.saturating_add(config.outage_down_epochs))
                        .or_default()
                        .push(EdgeId(e as u32));
                }
            }
        }

        trace.push(events);
    }
    trace
}

/// The capacity edge `e` currently carries: its last `SetCapacity` in
/// the trace so far (including this epoch's pending events), or the
/// base capacity. O(trace) per call — fine at generator rates.
fn current_capacity(
    graph: &Graph,
    trace: &[Vec<TopologyEvent>],
    pending: &[TopologyEvent],
    e: usize,
) -> f64 {
    for ev in pending
        .iter()
        .rev()
        .chain(trace.iter().rev().flat_map(|b| b.iter().rev()))
    {
        if let TopologyEvent::SetCapacity { edge, capacity } = *ev {
            if edge.index() == e {
                return capacity;
            }
        }
    }
    graph.edges()[e].capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::generators;
    use ufp_netgraph::topology::Topology;

    fn test_graph() -> Graph {
        generators::gnm_digraph(24, 80, (40.0, 80.0), &mut StdRng::seed_from_u64(42))
    }

    fn busy_config() -> FailureTraceConfig {
        FailureTraceConfig {
            epochs: 40,
            seed: 7,
            flap_rate: 1.5,
            flap_down_epochs: 3,
            resize_rate: 1.0,
            resize_range: (0.4, 1.6),
            outage_rate: 0.2,
            outage_radius: 1,
            outage_down_epochs: 2,
            drains: vec![
                DrainWindow {
                    node: NodeId(3),
                    start: 5,
                    duration: 4,
                },
                DrainWindow {
                    node: NodeId(11),
                    start: 20,
                    duration: 2,
                },
            ],
        }
    }

    #[test]
    fn deterministic_in_the_seed() {
        let g = test_graph();
        let a = failure_trace(&g, &busy_config());
        let b = failure_trace(&g, &busy_config());
        assert_eq!(a, b);
        let mut other = busy_config();
        other.seed = 8;
        assert_ne!(a, failure_trace(&g, &other));
    }

    #[test]
    fn every_event_replays_cleanly() {
        let g = test_graph();
        let trace = failure_trace(&g, &busy_config());
        assert_eq!(trace.len(), 40);
        let flat: Vec<TopologyEvent> = trace.iter().flatten().copied().collect();
        assert!(!flat.is_empty(), "busy config must emit events");
        // Valid against the base graph end to end.
        Topology::replay(&g, &flat).expect("generated trace must replay");
    }

    #[test]
    fn failures_pair_with_recoveries() {
        let g = test_graph();
        let trace = failure_trace(&g, &busy_config());
        let mut down = vec![false; g.num_edges()];
        let mut drained = vec![false; g.num_nodes()];
        for batch in &trace {
            for ev in batch {
                match *ev {
                    TopologyEvent::LinkDown { edge } => {
                        assert!(!down[edge.index()], "double down on {edge:?}");
                        down[edge.index()] = true;
                    }
                    TopologyEvent::LinkUp { edge } => {
                        assert!(down[edge.index()], "up of an up link {edge:?}");
                        down[edge.index()] = false;
                    }
                    TopologyEvent::DrainNode { node } => {
                        assert!(!drained[node.index()], "double drain of {node:?}");
                        drained[node.index()] = true;
                    }
                    TopologyEvent::UndrainNode { node } => {
                        assert!(drained[node.index()], "undrain of {node:?}");
                        drained[node.index()] = false;
                    }
                    TopologyEvent::SetCapacity { edge, capacity } => {
                        assert!(!down[edge.index()], "resize of a down link");
                        assert!(capacity > 0.0 && capacity.is_finite());
                    }
                }
            }
        }
    }

    #[test]
    fn drain_windows_open_and_close_on_schedule() {
        let g = test_graph();
        let mut config = FailureTraceConfig {
            epochs: 12,
            drains: vec![DrainWindow {
                node: NodeId(3),
                start: 5,
                duration: 4,
            }],
            ..FailureTraceConfig::default()
        };
        config.flap_rate = 0.0;
        let trace = failure_trace(&g, &config);
        assert_eq!(trace[5], vec![TopologyEvent::DrainNode { node: NodeId(3) }]);
        assert_eq!(
            trace[9],
            vec![TopologyEvent::UndrainNode { node: NodeId(3) }]
        );
        for (t, batch) in trace.iter().enumerate() {
            if t != 5 && t != 9 {
                assert!(batch.is_empty(), "unexpected events at epoch {t}");
            }
        }
    }

    #[test]
    fn outages_fail_whole_regions_together() {
        let g = test_graph();
        let config = FailureTraceConfig {
            epochs: 30,
            seed: 3,
            outage_rate: 0.5,
            outage_radius: 1,
            outage_down_epochs: 2,
            ..FailureTraceConfig::default()
        };
        let trace = failure_trace(&g, &config);
        // Some epoch must down more than one link at once (a region).
        assert!(
            trace.iter().any(|b| {
                b.iter()
                    .filter(|e| matches!(e, TopologyEvent::LinkDown { .. }))
                    .count()
                    > 1
            }),
            "no correlated outage emitted"
        );
    }
}
