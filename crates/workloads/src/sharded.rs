//! Community-structured, **shard-labelled** arrival traces.
//!
//! Where [`crate::arrivals`] samples endpoints over the whole network,
//! this module samples them against a *shard assignment* (node →
//! shard): most requests stay inside one shard's territory (hotspot
//! clusters concentrated per shard), and a tunable fraction crosses
//! shard boundaries — the traffic shape a sharded admission-control
//! engine is built for. All generators are deterministic functions of
//! their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::Request;
use ufp_engine::Arrival;
use ufp_netgraph::bfs;
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;

use crate::arrivals::{poisson_count, ArrivalProcess};
use crate::random_ufp::ValueModel;

/// Configuration of [`sharded_arrival_trace`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedTraceConfig {
    /// Number of epochs (batches) to generate.
    pub epochs: usize,
    /// Arrival-count process for the whole network (counts are split
    /// across shards by the per-request shard draw).
    pub process: ArrivalProcess,
    /// Fraction of requests in `[0, 1]` whose endpoints lie in
    /// *different* shards. Zero produces a purely shard-local trace —
    /// the regime in which a sharded engine is bit-identical to a
    /// single one.
    pub cross_fraction: f64,
    /// When `Some(k)`, each shard's local traffic concentrates on `k`
    /// fixed connected hotspot pairs inside that shard (and cross
    /// traffic on `k` fixed cross-shard pairs); `None` samples fresh
    /// connected pairs every time.
    pub hotspot_pairs: Option<usize>,
    /// Demand range within `(0, 1]`.
    pub demand_range: (f64, f64),
    /// Value model.
    pub values: ValueModel,
    /// Churn: `Some((lo, hi))` draws each TTL uniformly from `lo..=hi`.
    pub ttl_range: Option<(u32, u32)>,
    /// When set, cross-shard endpoints are sampled **without** the
    /// connectivity filter: any `(src, dst)` pair spanning two shards
    /// qualifies, reachable or not. This is how cross traffic is
    /// injected over *disconnected* communities — every engine
    /// (sharded or single) rejects the unroutable requests identically,
    /// which keeps such traces inside the bit-equivalence regime.
    pub allow_unroutable_cross: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShardedTraceConfig {
    fn default() -> Self {
        ShardedTraceConfig {
            epochs: 10,
            process: ArrivalProcess::Poisson { mean: 50.0 },
            cross_fraction: 0.0,
            hotspot_pairs: Some(4),
            demand_range: (0.2, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            ttl_range: None,
            allow_unroutable_cross: false,
            seed: 1,
        }
    }
}

/// The shard label of one arrival under `node_shard`: `Some(s)` when
/// both endpoints lie in shard `s`, `None` when it crosses shards.
pub fn shard_label(node_shard: &[u32], arrival: &Arrival) -> Option<u32> {
    let s = node_shard[arrival.request.src.index()];
    let d = node_shard[arrival.request.dst.index()];
    (s == d).then_some(s)
}

/// Shard-aware connected-endpoint sampler with cached reachability and
/// per-shard (plus cross-shard) hotspot pools.
struct ShardSampler<'a> {
    node_shard: &'a [u32],
    shards: usize,
    /// Nodes of each shard (sampling domain for sources).
    members: Vec<Vec<u32>>,
    reach_cache: Vec<Option<Vec<u32>>>,
    /// Fixed hotspot pools: one per shard plus one cross pool at the end.
    pools: Vec<Vec<(NodeId, NodeId)>>,
    pool_target: usize,
    allow_unroutable_cross: bool,
}

impl<'a> ShardSampler<'a> {
    fn new(
        graph: &Graph,
        node_shard: &'a [u32],
        hotspot_pairs: Option<usize>,
        allow_unroutable_cross: bool,
    ) -> Self {
        assert_eq!(node_shard.len(), graph.num_nodes(), "shard map length");
        let shards = node_shard
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(1);
        let mut members = vec![Vec::new(); shards];
        for (v, &s) in node_shard.iter().enumerate() {
            members[s as usize].push(v as u32);
        }
        assert!(
            members.iter().all(|m| !m.is_empty()),
            "every shard needs at least one node"
        );
        ShardSampler {
            node_shard,
            shards,
            members,
            reach_cache: vec![None; graph.num_nodes()],
            pools: vec![Vec::new(); shards + 1],
            pool_target: hotspot_pairs.unwrap_or(0),
            allow_unroutable_cross,
        }
    }

    fn reachable(&mut self, graph: &Graph, src: NodeId) -> &[u32] {
        self.reach_cache[src.index()].get_or_insert_with(|| {
            bfs::hop_distances(graph, src)
                .into_iter()
                .enumerate()
                .filter(|&(v, d)| d != usize::MAX && v != src.index())
                .map(|(v, _)| v as u32)
                .collect()
        })
    }

    /// Draw one pair: intra-shard within `Some(shard)`, cross-shard for
    /// `None`. Panics when the graph cannot supply such a pair within a
    /// generous retry budget (e.g. cross traffic requested over
    /// disconnected communities) — unless `allow_unroutable_cross`
    /// lifts the connectivity requirement for the cross pool.
    fn sample<R: Rng>(
        &mut self,
        graph: &Graph,
        shard: Option<usize>,
        rng: &mut R,
    ) -> (NodeId, NodeId) {
        let pool_idx = shard.unwrap_or(self.shards);
        if self.pool_target > 0 && self.pools[pool_idx].len() >= self.pool_target {
            let pool = &self.pools[pool_idx];
            return pool[rng.random_range(0..pool.len())];
        }
        if shard.is_none() && self.allow_unroutable_cross {
            assert!(self.shards >= 2, "cross traffic needs at least two shards");
            let src = NodeId(rng.random_range(0..graph.num_nodes() as u32));
            let src_shard = self.node_shard[src.index()] as usize;
            let mut other = rng.random_range(0..self.shards - 1);
            if other >= src_shard {
                other += 1;
            }
            let m = &self.members[other];
            let dst = NodeId(m[rng.random_range(0..m.len())]);
            if self.pool_target > 0 {
                self.pools[pool_idx].push((src, dst));
            }
            return (src, dst);
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            assert!(
                attempts <= 100_000,
                "no {} pair found — does the topology support it?",
                if shard.is_some() {
                    "intra-shard connected"
                } else {
                    "cross-shard connected"
                }
            );
            let src = match shard {
                Some(s) => {
                    let m = &self.members[s];
                    NodeId(m[rng.random_range(0..m.len())])
                }
                None => NodeId(rng.random_range(0..graph.num_nodes() as u32)),
            };
            let src_shard = self.node_shard[src.index()];
            let node_shard = self.node_shard;
            let want_same = shard.is_some();
            let candidates: Vec<u32> = self
                .reachable(graph, src)
                .iter()
                .copied()
                .filter(|&v| (node_shard[v as usize] == src_shard) == want_same)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let dst = NodeId(candidates[rng.random_range(0..candidates.len())]);
            if self.pool_target > 0 {
                self.pools[pool_idx].push((src, dst));
            }
            return (src, dst);
        }
    }
}

/// Generate a deterministic shard-labelled arrival trace over `graph`:
/// one batch per epoch, endpoints sampled against `node_shard` with
/// [`ShardedTraceConfig::cross_fraction`] of requests crossing shard
/// boundaries and the rest confined to (and hotspot-concentrated
/// within) a single shard.
pub fn sharded_arrival_trace(
    graph: &Graph,
    node_shard: &[u32],
    config: &ShardedTraceConfig,
) -> Vec<Vec<Arrival>> {
    let (dlo, dhi) = config.demand_range;
    assert!(
        0.0 < dlo && dlo <= dhi && dhi <= 1.0,
        "demands must lie in (0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.cross_fraction),
        "cross_fraction must lie in [0, 1]"
    );
    if let Some((lo, hi)) = config.ttl_range {
        assert!(1 <= lo && lo <= hi, "ttl range must be 1 <= lo <= hi");
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sampler = ShardSampler::new(
        graph,
        node_shard,
        config.hotspot_pairs,
        config.allow_unroutable_cross,
    );
    let shards = sampler.shards;
    let mut trace = Vec::with_capacity(config.epochs);
    for t in 0..config.epochs {
        let count = poisson_count(config.process.mean_at(t as u32), &mut rng);
        let mut batch = Vec::with_capacity(count);
        for _ in 0..count {
            let cross =
                config.cross_fraction > 0.0 && rng.random_range(0.0..1.0) < config.cross_fraction;
            let shard = if cross {
                None
            } else {
                Some(rng.random_range(0..shards))
            };
            let (src, dst) = sampler.sample(graph, shard, &mut rng);
            let demand = if dlo == dhi {
                dlo
            } else {
                rng.random_range(dlo..=dhi)
            };
            let value = config.values.sample_value(demand, &mut rng);
            let request = Request::new(src, dst, demand, value);
            let arrival = match config.ttl_range {
                None => Arrival::permanent(request),
                Some((lo, hi)) => Arrival::with_ttl(request, rng.random_range(lo..=hi)),
            };
            batch.push(arrival);
        }
        trace.push(batch);
    }
    trace
}

/// The block shard map matching
/// [`ufp_netgraph::generators::community_digraph`] **and**
/// `ufp_shard::NodeBlocks`: node `v` belongs to shard
/// `min(v / ceil(n / shards), shards - 1)`. The ceiling-division
/// convention is deliberately identical to the `NodeBlocks`
/// partitioner's, so traces labelled with this map stay shard-local
/// under a `NodeBlocks` partition even when `num_nodes` is not
/// divisible by `shards`.
pub fn block_shard_map(num_nodes: usize, shards: usize) -> Vec<u32> {
    assert!(shards >= 1 && num_nodes >= shards);
    let per = num_nodes.div_ceil(shards);
    (0..num_nodes)
        .map(|v| ((v / per) as u32).min(shards as u32 - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ufp_netgraph::generators;

    fn community(inter: usize, seed: u64) -> (Graph, Vec<u32>) {
        let g = generators::community_digraph(
            4,
            25,
            150,
            inter,
            (40.0, 80.0),
            (40.0, 80.0),
            &mut StdRng::seed_from_u64(seed),
        );
        let map = block_shard_map(g.num_nodes(), 4);
        (g, map)
    }

    #[test]
    fn zero_cross_fraction_stays_shard_local() {
        let (g, map) = community(0, 1);
        let cfg = ShardedTraceConfig {
            epochs: 6,
            ..Default::default()
        };
        let trace = sharded_arrival_trace(&g, &map, &cfg);
        let mut per_shard = [0usize; 4];
        for a in trace.iter().flatten() {
            let label = shard_label(&map, a).expect("zero cross fraction must stay local");
            per_shard[label as usize] += 1;
        }
        let total: usize = per_shard.iter().sum();
        assert!(total > 100, "trace too small to be meaningful: {total}");
        for (s, &c) in per_shard.iter().enumerate() {
            // Uniform shard draw: each shard holds roughly a quarter.
            assert!(
                c * 10 > total && c * 10 < total * 6,
                "shard {s} got {c} of {total} requests"
            );
        }
    }

    #[test]
    fn cross_fraction_is_respected() {
        let (g, map) = community(120, 2);
        let cfg = ShardedTraceConfig {
            epochs: 10,
            process: ArrivalProcess::Poisson { mean: 100.0 },
            cross_fraction: 0.3,
            ..Default::default()
        };
        let trace = sharded_arrival_trace(&g, &map, &cfg);
        let total: usize = trace.iter().map(Vec::len).sum();
        let cross = trace
            .iter()
            .flatten()
            .filter(|a| shard_label(&map, a).is_none())
            .count();
        let frac = cross as f64 / total as f64;
        assert!(
            (frac - 0.3).abs() < 0.06,
            "cross fraction {frac} far from configured 0.3 ({cross}/{total})"
        );
    }

    #[test]
    fn hotspot_pools_bound_distinct_pairs() {
        let (g, map) = community(60, 3);
        let cfg = ShardedTraceConfig {
            epochs: 8,
            cross_fraction: 0.2,
            hotspot_pairs: Some(3),
            ..Default::default()
        };
        let trace = sharded_arrival_trace(&g, &map, &cfg);
        let mut intra_pairs = std::collections::HashSet::new();
        let mut cross_pairs = std::collections::HashSet::new();
        for a in trace.iter().flatten() {
            let key = (a.request.src, a.request.dst);
            match shard_label(&map, a) {
                Some(_) => intra_pairs.insert(key),
                None => cross_pairs.insert(key),
            };
        }
        assert!(
            intra_pairs.len() <= 4 * 3,
            "expected ≤ 3 hotspot pairs per shard, got {}",
            intra_pairs.len()
        );
        assert!(
            cross_pairs.len() <= 3,
            "expected ≤ 3 cross hotspot pairs, got {}",
            cross_pairs.len()
        );
    }

    #[test]
    fn unroutable_cross_samples_over_disconnected_communities() {
        // inter = 0: communities are disconnected, so the reachability
        // filter can never supply a cross pair — the lifted mode must.
        let (g, map) = community(0, 5);
        let cfg = ShardedTraceConfig {
            epochs: 8,
            process: ArrivalProcess::Poisson { mean: 60.0 },
            cross_fraction: 0.25,
            allow_unroutable_cross: true,
            ..Default::default()
        };
        let trace = sharded_arrival_trace(&g, &map, &cfg);
        let total: usize = trace.iter().map(Vec::len).sum();
        let cross = trace
            .iter()
            .flatten()
            .filter(|a| shard_label(&map, a).is_none())
            .count();
        assert!(
            cross > 0 && cross < total,
            "expected a mix of cross and local arrivals ({cross}/{total})"
        );
        // Every cross pair really does span two disconnected
        // communities: no path can exist.
        for a in trace.iter().flatten() {
            if shard_label(&map, a).is_none() {
                let d = bfs::hop_distances(&g, a.request.src);
                assert_eq!(
                    d[a.request.dst.index()],
                    usize::MAX,
                    "cross pair unexpectedly routable"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, map) = community(40, 4);
        let cfg = ShardedTraceConfig {
            epochs: 4,
            cross_fraction: 0.25,
            ..Default::default()
        };
        assert_eq!(
            sharded_arrival_trace(&g, &map, &cfg),
            sharded_arrival_trace(&g, &map, &cfg)
        );
        let other = sharded_arrival_trace(&g, &map, &ShardedTraceConfig { seed: 9, ..cfg });
        assert_ne!(sharded_arrival_trace(&g, &map, &cfg), other);
    }

    #[test]
    fn block_shard_map_covers_remainders() {
        // Ceiling-division blocks, the NodeBlocks convention: the
        // remainder shrinks the *last* shard.
        let map = block_shard_map(10, 3);
        assert_eq!(map, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        assert_eq!(block_shard_map(4, 4), vec![0, 1, 2, 3]);
    }
}
