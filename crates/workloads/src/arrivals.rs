//! Streaming arrival-process traces for the admission-control engine.
//!
//! Where [`crate::random_ufp`] builds one-shot batch instances, this
//! module builds *time series*: per-epoch batches of
//! [`ufp_engine::Arrival`]s following classic traffic shapes —
//! homogeneous Poisson, diurnal sinusoid, flash-crowd bursts, and churn
//! (finite request lifetimes that release capacity back to the network).
//! All generators are deterministic functions of their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::Request;
use ufp_engine::Arrival;
use ufp_netgraph::graph::Graph;

use crate::endpoints::EndpointSampler;
use crate::random_ufp::ValueModel;

/// Shape of the per-epoch arrival counts.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson: counts `~ Poisson(mean)` every epoch.
    Poisson {
        /// Mean arrivals per epoch `λ`.
        mean: f64,
    },
    /// Diurnal sinusoid: `λ_t = mean·(1 + amplitude·sin(2πt/period))`,
    /// the day/night load swing of user-facing traffic.
    Diurnal {
        /// Baseline mean arrivals per epoch.
        mean: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// Period in epochs.
        period: u32,
    },
    /// Flash crowd: Poisson at `base`, except epochs
    /// `[at, at + width)` spike to `base + spike`.
    FlashCrowd {
        /// Off-peak mean arrivals per epoch.
        base: f64,
        /// Additional mean during the spike.
        spike: f64,
        /// First spiked epoch (0-based).
        at: u32,
        /// Spike duration in epochs.
        width: u32,
    },
}

impl ArrivalProcess {
    /// Mean arrivals for epoch `t`.
    pub fn mean_at(&self, t: u32) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean } => mean,
            ArrivalProcess::Diurnal {
                mean,
                amplitude,
                period,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t as f64 / period.max(1) as f64;
                (mean * (1.0 + amplitude * phase.sin())).max(0.0)
            }
            ArrivalProcess::FlashCrowd {
                base,
                spike,
                at,
                width,
            } => {
                if (at..at.saturating_add(width)).contains(&t) {
                    base + spike
                } else {
                    base
                }
            }
        }
    }
}

/// Configuration of [`arrival_trace`].
#[derive(Clone, Copy, Debug)]
pub struct ArrivalTraceConfig {
    /// Number of epochs (batches) to generate.
    pub epochs: usize,
    /// Arrival-count process.
    pub process: ArrivalProcess,
    /// When `Some(k)`, endpoints are drawn from `k` fixed connected
    /// hotspot pairs (concentrated demand, as in
    /// [`crate::RandomUfpConfig::hotspot_pairs`]); `None` samples
    /// uniformly random connected pairs.
    pub hotspot_pairs: Option<usize>,
    /// Demand range within `(0, 1]`.
    pub demand_range: (f64, f64),
    /// Value model.
    pub values: ValueModel,
    /// Churn: `Some((lo, hi))` draws each request's TTL uniformly from
    /// `lo..=hi` epochs; `None` makes admissions permanent.
    pub ttl_range: Option<(u32, u32)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrivalTraceConfig {
    fn default() -> Self {
        ArrivalTraceConfig {
            epochs: 10,
            process: ArrivalProcess::Poisson { mean: 50.0 },
            hotspot_pairs: None,
            demand_range: (0.2, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            ttl_range: None,
            seed: 1,
        }
    }
}

/// Sample a Poisson count. Knuth's product-of-uniforms for small means,
/// normal approximation (Box–Muller) for large ones — `e^{−λ}` underflows
/// long before λ reaches the trace sizes the engine targets.
pub fn poisson_count<R: Rng>(mean: f64, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= rng.random_range(0.0..1.0);
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    // Box–Muller; Poisson(λ) ≈ N(λ, λ) for large λ.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + mean.sqrt() * z).round().max(0.0) as usize
}

/// Generate a deterministic arrival trace over `graph`: one batch of
/// [`Arrival`]s per epoch. Every request connects a reachable endpoint
/// pair, so rejections measure congestion rather than disconnection.
pub fn arrival_trace(graph: &Graph, config: &ArrivalTraceConfig) -> Vec<Vec<Arrival>> {
    let (dlo, dhi) = config.demand_range;
    assert!(
        0.0 < dlo && dlo <= dhi && dhi <= 1.0,
        "demands must lie in (0,1]"
    );
    if let Some((lo, hi)) = config.ttl_range {
        assert!(1 <= lo && lo <= hi, "ttl range must be 1 <= lo <= hi");
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sampler = EndpointSampler::new(graph, config.hotspot_pairs);
    let mut trace = Vec::with_capacity(config.epochs);
    for t in 0..config.epochs {
        let count = poisson_count(config.process.mean_at(t as u32), &mut rng);
        let mut batch = Vec::with_capacity(count);
        for _ in 0..count {
            let (src, dst) = sampler.sample(graph, &mut rng);
            let demand = if dlo == dhi {
                dlo
            } else {
                rng.random_range(dlo..=dhi)
            };
            let value = config.values.sample_value(demand, &mut rng);
            let request = Request::new(src, dst, demand, value);
            let arrival = match config.ttl_range {
                None => Arrival::permanent(request),
                Some((lo, hi)) => Arrival::with_ttl(request, rng.random_range(lo..=hi)),
            };
            batch.push(arrival);
        }
        trace.push(batch);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::generators;

    fn test_graph(seed: u64) -> Graph {
        generators::gnm_digraph(30, 200, (50.0, 100.0), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn poisson_counts_track_the_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        for &mean in &[0.5f64, 5.0, 20.0, 200.0] {
            let n = 400;
            let total: usize = (0..n).map(|_| poisson_count(mean, &mut rng)).sum();
            let avg = total as f64 / n as f64;
            assert!(
                (avg - mean).abs() < 4.0 * (mean / n as f64).sqrt() + 0.5,
                "mean {mean}: sample average {avg}"
            );
        }
        assert_eq!(poisson_count(0.0, &mut rng), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = test_graph(1);
        let cfg = ArrivalTraceConfig {
            epochs: 5,
            ..Default::default()
        };
        let a = arrival_trace(&g, &cfg);
        let b = arrival_trace(&g, &cfg);
        assert_eq!(a, b);
        let c = arrival_trace(&g, &ArrivalTraceConfig { seed: 2, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_swings_between_day_and_night() {
        let p = ArrivalProcess::Diurnal {
            mean: 100.0,
            amplitude: 0.8,
            period: 24,
        };
        let peak = p.mean_at(6); // sin peaks a quarter period in
        let trough = p.mean_at(18);
        assert!(peak > 170.0, "peak {peak}");
        assert!(trough < 30.0, "trough {trough}");
        assert!((p.mean_at(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_spikes_in_window() {
        let p = ArrivalProcess::FlashCrowd {
            base: 10.0,
            spike: 90.0,
            at: 5,
            width: 3,
        };
        assert_eq!(p.mean_at(4), 10.0);
        assert_eq!(p.mean_at(5), 100.0);
        assert_eq!(p.mean_at(7), 100.0);
        assert_eq!(p.mean_at(8), 10.0);
    }

    #[test]
    fn churn_ttls_land_in_range() {
        let g = test_graph(2);
        let cfg = ArrivalTraceConfig {
            epochs: 4,
            ttl_range: Some((2, 6)),
            ..Default::default()
        };
        let trace = arrival_trace(&g, &cfg);
        let mut seen = 0;
        for batch in &trace {
            for a in batch {
                let ttl = a.ttl.expect("churn trace must set ttls");
                assert!((2..=6).contains(&ttl));
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn hotspots_concentrate_endpoints() {
        let g = test_graph(3);
        let cfg = ArrivalTraceConfig {
            epochs: 6,
            hotspot_pairs: Some(4),
            ..Default::default()
        };
        let trace = arrival_trace(&g, &cfg);
        let mut pairs = std::collections::HashSet::new();
        for a in trace.iter().flatten() {
            pairs.insert((a.request.src, a.request.dst));
        }
        assert!(
            pairs.len() <= 4,
            "expected ≤ 4 hotspot pairs, got {}",
            pairs.len()
        );
    }

    #[test]
    fn demands_and_values_in_range() {
        let g = test_graph(4);
        let cfg = ArrivalTraceConfig {
            epochs: 3,
            demand_range: (0.25, 0.75),
            ..Default::default()
        };
        for a in arrival_trace(&g, &cfg).iter().flatten() {
            assert!((0.25..=0.75).contains(&a.request.demand));
            assert!(a.request.value > 0.0);
        }
    }
}
