//! Shared connected-endpoint sampling (used by [`crate::random_ufp`] and
//! [`crate::arrivals`]).
//!
//! Draws `(src, dst)` pairs that are connected in the graph, with cached
//! per-source reachability so repeated samples cost one BFS per distinct
//! source, and optional *hotspot* concentration: the first `k` drawn
//! pairs become a fixed pool that all later samples reuse, modelling
//! demand concentrated on a few ingress/egress pairs.

use rand::Rng;

use ufp_netgraph::bfs;
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;

/// Endpoint sampler with cached reachability, reused across a whole
/// request set or arrival trace.
pub(crate) struct EndpointSampler {
    reach_cache: Vec<Option<Vec<u32>>>,
    hotspots: Vec<(NodeId, NodeId)>,
    hotspot_target: usize,
}

impl EndpointSampler {
    /// `hotspot_pairs = Some(k)` concentrates all samples on `k` fixed
    /// connected pairs; `None` samples uniformly.
    pub(crate) fn new(graph: &Graph, hotspot_pairs: Option<usize>) -> Self {
        EndpointSampler {
            reach_cache: vec![None; graph.num_nodes()],
            hotspots: Vec::new(),
            hotspot_target: hotspot_pairs.unwrap_or(0),
        }
    }

    fn reachable<'a>(&'a mut self, graph: &Graph, src: NodeId) -> &'a [u32] {
        self.reach_cache[src.index()].get_or_insert_with(|| {
            bfs::hop_distances(graph, src)
                .into_iter()
                .enumerate()
                .filter(|&(v, d)| d != usize::MAX && v != src.index())
                .map(|(v, _)| v as u32)
                .collect()
        })
    }

    /// Draw one connected pair. Panics if the graph is too disconnected
    /// to find one within a generous retry budget.
    pub(crate) fn sample<R: Rng>(&mut self, graph: &Graph, rng: &mut R) -> (NodeId, NodeId) {
        let n = graph.num_nodes() as u32;
        if self.hotspot_target > 0 && self.hotspots.len() >= self.hotspot_target {
            return self.hotspots[rng.random_range(0..self.hotspots.len())];
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            assert!(
                attempts <= 100_000,
                "graph too disconnected to sample a connected request pair"
            );
            let src = NodeId(rng.random_range(0..n));
            let reachable = self.reachable(graph, src);
            if reachable.is_empty() {
                continue;
            }
            let dst = NodeId(reachable[rng.random_range(0..reachable.len())]);
            if self.hotspot_target > 0 {
                self.hotspots.push((src, dst));
            }
            return (src, dst);
        }
    }
}
