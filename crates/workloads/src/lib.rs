//! # ufp-workloads
//!
//! Instance generators for the experiment suite:
//!
//! * [`figure2()`] — the directed `e/(e−1)` lower-bound family of
//!   Theorem 3.11 (plain and subdivided tie-break-free variants), with
//!   its known optimum and predicted adversarial ratio.
//! * [`figure3()`] — the 7-vertex undirected `4/3` lower-bound instance of
//!   Theorem 3.12, with the cut structure its proof relies on.
//! * [`figure4()`] — the auction `4/3` lower-bound family of Theorem 4.5.
//! * [`random_ufp()`] — random `G(n,m)` and grid UFP workloads guaranteed
//!   to satisfy the `B ≥ ln(m)/ε²` precondition, with several demand /
//!   value models.
//! * [`auctions`] — random multi-unit auctions (uniform and Zipf item
//!   popularity) in the large-multiplicity regime.
//! * [`arrivals`] — streaming arrival-process traces for the
//!   `ufp-engine` admission controller: Poisson, diurnal sinusoid,
//!   flash-crowd bursts, and churn with request TTLs.
//! * [`sharded`] — community-structured, shard-labelled traces for the
//!   `ufp_shard` sharded engine: per-shard hotspot clusters with a
//!   tunable cross-shard traffic fraction.
//! * [`failures`] — dynamic-topology failure traces for the repair
//!   pass: random link flaps, capacity resizes, correlated regional
//!   outages, and planned drain windows, as per-epoch
//!   `TopologyEvent` batches.
//!
//! All generators are deterministic functions of their seed, so every
//! number in EXPERIMENTS.md is reproducible.

pub mod arrivals;
pub mod auctions;
pub(crate) mod endpoints;
pub mod failures;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod random_ufp;
pub mod sharded;

pub use arrivals::{arrival_trace, poisson_count, ArrivalProcess, ArrivalTraceConfig};
pub use auctions::{random_auction, required_multiplicity, Popularity, RandomAuctionConfig};
pub use failures::{failure_trace, DrainWindow, FailureTraceConfig};
pub use figure2::{
    figure2, figure2_optimum, figure2_predicted_ratio, figure2_subdivided, Figure2Layout,
};
pub use figure3::{figure3, figure3_algorithm_bound, figure3_hub, figure3_optimum, figure3_vertex};
pub use figure4::{figure4, figure4_algorithm_bound, figure4_optimum, figure4_predicted_ratio};
pub use random_ufp::{random_grid_ufp, random_ufp, required_b, RandomUfpConfig, ValueModel};
pub use sharded::{block_shard_map, shard_label, sharded_arrival_trace, ShardedTraceConfig};
