//! The Figure 2 construction (Theorem 3.11): the directed instance on
//! which no reasonable iterative path-minimizing algorithm beats
//! `e/(e−1) − o(1)`.
//!
//! Vertices: sources `s_1..s_ℓ`, middle vertices `v_1..v_ℓ`, sink `t`.
//! Arcs `s_i → v_j` for every `j ≥ i` and `v_j → t`, all with capacity
//! `B`. Requests: `B` copies of `(s_i, t, 1, 1)` per source, listed in
//! source order (ids `(i−1)·B .. i·B−1`), which together with the
//! "minimal i, maximal j" tie-break realizes the adversarial schedule of
//! the proof. The paper also sketches a *subdivided* variant that forces
//! the same schedule under ANY tie-break by replacing `s_i → v_j` with a
//! directed path of `i·ℓ + 1 − j` edges — reasonable functions prefer
//! fewer edges, so the preference for small `i` / large `j` becomes
//! strict. Both are generated here.
//!
//! Known quantities: `OPT = B·ℓ`; the adversarial algorithm achieves at
//! most `B·ℓ·(1 − (B/(B+1))^B) + B²`, so the ratio approaches
//! `1/(1 − (1 − 1/(B+1))^B) → e/(e−1) ≈ 1.582`.

use ufp_core::{Request, UfpInstance};
use ufp_netgraph::graph::GraphBuilder;
use ufp_netgraph::ids::NodeId;

/// Node ids for the plain Figure 2 graph.
#[derive(Clone, Copy, Debug)]
pub struct Figure2Layout {
    /// Number of source/middle pairs ℓ.
    pub ell: usize,
}

impl Figure2Layout {
    /// `s_i` (1-based `i`).
    pub fn source(&self, i: usize) -> NodeId {
        debug_assert!(1 <= i && i <= self.ell);
        NodeId((i - 1) as u32)
    }
    /// `v_j` (1-based `j`).
    pub fn middle(&self, j: usize) -> NodeId {
        debug_assert!(1 <= j && j <= self.ell);
        NodeId((self.ell + j - 1) as u32)
    }
    /// The sink `t`.
    pub fn sink(&self) -> NodeId {
        NodeId((2 * self.ell) as u32)
    }
}

/// Build the plain Figure 2 instance.
pub fn figure2(ell: usize, b: usize) -> UfpInstance {
    assert!(ell >= 1 && b >= 1);
    let layout = Figure2Layout { ell };
    let mut gb = GraphBuilder::directed(2 * ell + 1);
    let cap = b as f64;
    for i in 1..=ell {
        for j in i..=ell {
            gb.add_edge(layout.source(i), layout.middle(j), cap);
        }
    }
    for j in 1..=ell {
        gb.add_edge(layout.middle(j), layout.sink(), cap);
    }
    let mut requests = Vec::with_capacity(ell * b);
    for i in 1..=ell {
        for _ in 0..b {
            requests.push(Request::new(layout.source(i), layout.sink(), 1.0, 1.0));
        }
    }
    UfpInstance::new(gb.build(), requests)
}

/// Build the subdivided variant: `s_i → v_j` becomes a directed path with
/// `i·ℓ + 1 − j` edges, making the adversarial preference strict for any
/// reasonable function. Mind the size: the graph has `Θ(ℓ⁴)` edges.
pub fn figure2_subdivided(ell: usize, b: usize) -> UfpInstance {
    assert!(ell >= 1 && b >= 1);
    let layout = Figure2Layout { ell };
    let cap = b as f64;
    let mut gb = GraphBuilder::directed(2 * ell + 1);
    for i in 1..=ell {
        for j in i..=ell {
            let hops = i * ell + 1 - j; // ≥ 1 since j ≤ ℓ ≤ i·ℓ
            let mut prev = layout.source(i);
            for _ in 0..hops - 1 {
                let mid = gb.add_nodes(1);
                gb.add_edge(prev, mid, cap);
                prev = mid;
            }
            gb.add_edge(prev, layout.middle(j), cap);
        }
    }
    for j in 1..=ell {
        gb.add_edge(layout.middle(j), layout.sink(), cap);
    }
    let mut requests = Vec::with_capacity(ell * b);
    for i in 1..=ell {
        for _ in 0..b {
            requests.push(Request::new(layout.source(i), layout.sink(), 1.0, 1.0));
        }
    }
    UfpInstance::new(gb.build(), requests)
}

/// The optimal value `B·ℓ` (route each `(s_i, t)` request via `v_i`).
pub fn figure2_optimum(ell: usize, b: usize) -> f64 {
    (ell * b) as f64
}

/// The ratio the proof predicts for the adversarial schedule:
/// `1 / (1 − (B/(B+1))^B)`, which approaches `e/(e−1)` as `B → ∞`.
pub fn figure2_predicted_ratio(b: usize) -> f64 {
    let bf = b as f64;
    1.0 / (1.0 - (bf / (bf + 1.0)).powi(b as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::bfs;

    #[test]
    fn plain_structure() {
        let inst = figure2(4, 3);
        let g = inst.graph();
        // edges: sum_{i=1..4} (4 - i + 1) + 4 = 10 + 4 = 14
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(inst.num_requests(), 12);
        assert_eq!(g.min_capacity(), 3.0);
        // every source reaches the sink
        let layout = Figure2Layout { ell: 4 };
        for i in 1..=4 {
            assert!(bfs::is_reachable(g, layout.source(i), layout.sink()));
        }
        // s_4 cannot reach v_1..v_3
        assert!(!bfs::is_reachable(g, layout.source(4), layout.middle(1)));
    }

    #[test]
    fn requests_listed_in_source_blocks() {
        let inst = figure2(3, 2);
        let layout = Figure2Layout { ell: 3 };
        for i in 1..=3usize {
            for k in 0..2usize {
                let r = inst.requests()[(i - 1) * 2 + k];
                assert_eq!(r.src, layout.source(i));
                assert_eq!(r.dst, layout.sink());
                assert_eq!(r.demand, 1.0);
                assert_eq!(r.value, 1.0);
            }
        }
    }

    #[test]
    fn optimum_is_routable() {
        // Verify OPT = B·ℓ by the exact solver on a small case.
        let inst = figure2(3, 2);
        let res = ufp_core::exact_optimum(&inst, &ufp_core::ExactConfig::default());
        assert_eq!(res.value, figure2_optimum(3, 2));
        assert!(res.exhaustive);
    }

    #[test]
    fn predicted_ratio_tends_to_e_over_e_minus_1() {
        let e = std::f64::consts::E;
        let limit = e / (e - 1.0);
        assert!(figure2_predicted_ratio(1) > limit);
        assert!((figure2_predicted_ratio(256) - limit).abs() < 0.01);
        // monotone decreasing toward the limit
        assert!(figure2_predicted_ratio(4) > figure2_predicted_ratio(64));
        assert!(figure2_predicted_ratio(64) > limit);
    }

    #[test]
    fn subdivided_path_lengths() {
        let inst = figure2_subdivided(3, 2);
        let g = inst.graph();
        // edges: sum over i, j>=i of (i*3 + 1 - j) middle-path edges + 3 sink edges
        let mut expected = 3usize; // v_j -> t
        for i in 1..=3usize {
            for j in i..=3usize {
                expected += i * 3 + 1 - j;
            }
        }
        assert_eq!(g.num_edges(), expected);
        // the shortest route from s_1 is via v_3 (1*3+1-3 = 1 edge + 1)
        let layout = Figure2Layout { ell: 3 };
        let hops = bfs::hop_distances(g, layout.source(1));
        assert_eq!(hops[layout.sink().index()], 2);
    }
}

/// Fast simulator of the adversarial reasonable-algorithm run on the
/// plain Figure 2 instance.
///
/// The generic engine ([`ufp_core::iterative_path_minimizer`]) scores
/// every simple path of every unrouted request per iteration — exact but
/// `O((Bℓ)²·ℓ)` on this family, which caps the reachable `B`. This
/// simulator exploits the instance's symmetry (all `B` requests of a
/// source are identical; all paths have exactly two edges), runs the
/// *same* score `h(p) = (d/v)·Σ (1/c_e)·e^{εB f_e/c_e}` with the *same*
/// "minimal i, maximal j" tie-break, and costs `O(ℓ²)` per iteration.
/// `tests::simulator_matches_generic_engine` pins them together.
pub fn simulate_figure2_adversary(ell: usize, b: usize, epsilon: f64) -> f64 {
    let bf = b as f64;
    // Flow on s_i -> v_j arcs (only j >= i used) and on v_j -> t arcs.
    let mut flow_sv = vec![vec![0u32; ell + 1]; ell + 1];
    let mut flow_vt = vec![0u32; ell + 1];
    let mut remaining = vec![b; ell + 1];
    // Edge weight under h: (1/B)·e^{ε·f} (demand 1, capacity B, and the
    // εB/B exponent collapses to ε·f).
    let w = |f: u32| (epsilon * f as f64).exp() / bf;

    let mut routed = 0usize;
    loop {
        // Per source, the best (min-score, max-j) candidate.
        let mut best: Option<(f64, usize, usize)> = None; // (score, i, j)
        for i in 1..=ell {
            if remaining[i] == 0 {
                continue;
            }
            for j in i..=ell {
                if flow_sv[i][j] >= b as u32 || flow_vt[j] >= b as u32 {
                    continue; // residual-infeasible
                }
                let score = w(flow_sv[i][j]) + w(flow_vt[j]);
                let better = match best {
                    None => true,
                    // strict improvement, or tie with (min i, max j)
                    Some((bs, bi, bj)) => {
                        score < bs || (score == bs && (i < bi || (i == bi && j > bj)))
                    }
                };
                if better {
                    best = Some((score, i, j));
                }
            }
        }
        let Some((_, i, j)) = best else {
            break;
        };
        flow_sv[i][j] += 1;
        flow_vt[j] += 1;
        remaining[i] -= 1;
        routed += 1;
    }
    routed as f64
}

#[cfg(test)]
mod simulator_tests {
    use super::*;
    use ufp_core::{iterative_path_minimizer, EngineConfig, PrimalDualScore, TieBreak};

    #[test]
    fn simulator_matches_generic_engine() {
        for (ell, b) in [(3usize, 2usize), (5, 2), (4, 3), (6, 2)] {
            let eps = 0.5;
            let inst = figure2(ell, b);
            let cfg = EngineConfig {
                epsilon: eps,
                tie: TieBreak::HighestSecondNode,
                ..Default::default()
            };
            let engine = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
            let simulated = simulate_figure2_adversary(ell, b, eps);
            assert_eq!(
                engine.solution.len() as f64,
                simulated,
                "ell={ell} b={b}: engine {} vs simulator {simulated}",
                engine.solution.len()
            );
        }
    }

    #[test]
    fn simulator_tracks_the_proof_formula() {
        // ALG ≈ Bℓ(1 − (B/(B+1))^B) up to the +O(B²) integrality slack.
        for (ell, b) in [(64usize, 4usize), (128, 8)] {
            let alg = simulate_figure2_adversary(ell, b, 0.5);
            let bf = b as f64;
            let lf = ell as f64;
            let predicted = bf * lf * (1.0 - (bf / (bf + 1.0)).powi(b as i32));
            assert!(
                (alg - predicted).abs() <= bf * bf + bf,
                "ell={ell} b={b}: alg {alg} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn ratio_approaches_e_over_e_minus_one_from_above() {
        // predicted(B) = 1/(1 − (B/(B+1))^B) decreases from 1.8 (B=2)
        // toward e/(e−1) ≈ 1.582; the measured ratio tracks it from
        // slightly below (the +O(B²) integrality slack, B/ℓ = 1/32 here).
        let e = std::f64::consts::E;
        let limit = e / (e - 1.0);
        let mut last = f64::INFINITY;
        for b in [2usize, 4, 8, 16] {
            let ell = 32 * b;
            let alg = simulate_figure2_adversary(ell, b, 0.5);
            let ratio = figure2_optimum(ell, b) / alg;
            let predicted = figure2_predicted_ratio(b);
            assert!(
                ratio < last,
                "measured ratio must shrink with B: {ratio} after {last}"
            );
            assert!(
                ratio <= predicted + 1e-9,
                "measured {ratio} above predicted {predicted} at B={b}"
            );
            assert!(
                ratio >= limit - 0.15,
                "measured {ratio} too far below the e/(e-1) limit at B={b}"
            );
            last = ratio;
        }
        // by B = 16 the measured ratio should sit close to the limit
        assert!(last > 1.45 && last < 1.70, "final ratio {last}");
    }
}
