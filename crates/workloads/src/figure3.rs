//! The Figure 3 construction (Theorem 3.12): the 7-vertex undirected
//! instance showing a 4/3 lower bound for every reasonable iterative
//! path-minimizing algorithm, for arbitrarily large `B`.
//!
//! Vertices `v_1..v_7`; the hub is `v_7`. Edges (all capacity `B`):
//! `v1–v2, v2–v3` and `v4–v5, v5–v6` (the two "private" 2-hop corridors),
//! plus the hub star `v1–v7, v7–v3, v7–v4, v7–v6`. Requests, unit demand
//! and value: `B×(v1,v3)`, `B×(v4,v6)`, `B×(v1,v6)`, `B×(v3,v4)`, in that
//! block order.
//!
//! `OPT = 4B` (corridors for the first two blocks, hub for the last two).
//! The adversarial schedule — realized by preferring hub paths among
//! tied minimizers — burns the hub on the first two blocks and caps any
//! algorithm at `3B`: every `v1→v6` or `v3→v4` path crosses the cut
//! `{v1–v7, v3–v7}`, whose residual totals `B` after the first phase.

use ufp_core::{Request, UfpInstance};
use ufp_netgraph::graph::GraphBuilder;
use ufp_netgraph::ids::NodeId;

/// `v_k` (1-based, matching the paper's labels).
pub fn figure3_vertex(k: usize) -> NodeId {
    debug_assert!((1..=7).contains(&k));
    NodeId((k - 1) as u32)
}

/// The hub vertex `v_7` (tie-break target for the adversary).
pub fn figure3_hub() -> NodeId {
    figure3_vertex(7)
}

/// Build the Figure 3 instance. `b` must be even (the proof proceeds in
/// `B/2` phases of four iterations).
pub fn figure3(b: usize) -> UfpInstance {
    assert!(b >= 2 && b.is_multiple_of(2), "Figure 3 needs even B ≥ 2");
    let v = figure3_vertex;
    let cap = b as f64;
    let mut gb = GraphBuilder::undirected(7);
    // corridors
    gb.add_edge(v(1), v(2), cap);
    gb.add_edge(v(2), v(3), cap);
    gb.add_edge(v(4), v(5), cap);
    gb.add_edge(v(5), v(6), cap);
    // hub star
    gb.add_edge(v(1), v(7), cap);
    gb.add_edge(v(7), v(3), cap);
    gb.add_edge(v(7), v(4), cap);
    gb.add_edge(v(7), v(6), cap);

    let mut requests = Vec::with_capacity(4 * b);
    let blocks = [(1, 3), (4, 6), (1, 6), (3, 4)];
    for (s, t) in blocks {
        for _ in 0..b {
            requests.push(Request::new(v(s), v(t), 1.0, 1.0));
        }
    }
    UfpInstance::new(gb.build(), requests)
}

/// `OPT = 4B`.
pub fn figure3_optimum(b: usize) -> f64 {
    (4 * b) as f64
}

/// The adversarial algorithm's ceiling: `3B`.
pub fn figure3_algorithm_bound(b: usize) -> f64 {
    (3 * b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::bfs;

    #[test]
    fn structure() {
        let inst = figure3(4);
        let g = inst.graph();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(inst.num_requests(), 16);
        assert_eq!(g.min_capacity(), 4.0);
        // connectivity of every request pair
        for r in inst.requests() {
            assert!(bfs::is_reachable(g, r.src, r.dst));
        }
    }

    #[test]
    fn optimum_achieves_4b() {
        let inst = figure3(2);
        let res = ufp_core::exact_optimum(&inst, &ufp_core::ExactConfig::default());
        assert_eq!(res.value, figure3_optimum(2));
        assert!(res.exhaustive);
    }

    #[test]
    #[should_panic]
    fn odd_b_rejected() {
        figure3(3);
    }

    #[test]
    fn the_cut_argument_holds() {
        // Removing edges v1–v7 and v3–v7 must disconnect v1 from v6 and
        // v3 from v4 — the heart of the 4/3 proof.
        let inst = figure3(2);
        let g = inst.graph();
        let v = figure3_vertex;
        // Identify the two cut edge ids.
        let mut cut = Vec::new();
        for (e, edge) in g.edges().iter().enumerate() {
            let pair = (edge.src, edge.dst);
            if pair == (v(1), v(7)) || pair == (v(7), v(3)) {
                cut.push(e);
            }
        }
        assert_eq!(cut.len(), 2);
        // BFS avoiding the cut: rebuild the graph without those edges.
        let mut gb = GraphBuilder::undirected(7);
        for (e, edge) in g.edges().iter().enumerate() {
            if !cut.contains(&e) {
                gb.add_edge(edge.src, edge.dst, edge.capacity);
            }
        }
        let g2 = gb.build();
        assert!(!bfs::is_reachable(&g2, v(1), v(6)));
        assert!(!bfs::is_reachable(&g2, v(3), v(4)));
        // but the corridors survive
        assert!(bfs::is_reachable(&g2, v(1), v(3)));
        assert!(bfs::is_reachable(&g2, v(4), v(6)));
    }
}
