//! Random multi-unit auction workloads in the large-multiplicity regime.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use ufp_auction::{AuctionInstance, Bid, ItemId};

/// Item popularity when sampling bundles.
#[derive(Clone, Copy, Debug)]
pub enum Popularity {
    /// Items equally likely.
    Uniform,
    /// Zipf-like: item `u` drawn with weight `1/(u+1)^s` — a few hot
    /// items contested by most bundles, as in spectrum auctions.
    Zipf {
        /// Skew exponent.
        s: f64,
    },
}

/// Configuration for [`random_auction`].
#[derive(Clone, Copy, Debug)]
pub struct RandomAuctionConfig {
    /// Number of distinct items `m`.
    pub items: usize,
    /// Number of bids.
    pub bids: usize,
    /// Bundle size range (inclusive).
    pub bundle_size: (usize, usize),
    /// ε for which `B ≥ ln(m)/ε²` will hold.
    pub epsilon_target: f64,
    /// Value range; values additionally scale with bundle size.
    pub value_per_item: (f64, f64),
    /// Item popularity.
    pub popularity: Popularity,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomAuctionConfig {
    fn default() -> Self {
        RandomAuctionConfig {
            items: 40,
            bids: 200,
            bundle_size: (1, 5),
            epsilon_target: 0.25,
            value_per_item: (0.5, 2.0),
            popularity: Popularity::Uniform,
            seed: 1,
        }
    }
}

/// Minimum multiplicity needed for `B ≥ ln(m)/ε²`.
pub fn required_multiplicity(items: usize, epsilon: f64) -> f64 {
    (items.max(2) as f64).ln() / (epsilon * epsilon)
}

/// Generate a random single-minded multi-unit auction.
pub fn random_auction(config: &RandomAuctionConfig) -> AuctionInstance {
    assert!(config.items >= 1 && config.bids >= 1);
    let (blo, bhi) = config.bundle_size;
    assert!(1 <= blo && blo <= bhi && bhi <= config.items);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let b = required_multiplicity(config.items, config.epsilon_target).ceil();
    // Multiplicities in [B, 2B].
    let multiplicities: Vec<f64> = (0..config.items)
        .map(|_| rng.random_range(b..=2.0 * b).floor())
        .collect();

    // Popularity weights (cumulative, for sampling without replacement we
    // shuffle a weighted pool instead).
    let weights: Vec<f64> = (0..config.items)
        .map(|u| match config.popularity {
            Popularity::Uniform => 1.0,
            Popularity::Zipf { s } => 1.0 / ((u + 1) as f64).powf(s),
        })
        .collect();
    let total_w: f64 = weights.iter().sum();

    let mut pool: Vec<u32> = (0..config.items as u32).collect();
    let mut bids = Vec::with_capacity(config.bids);
    for _ in 0..config.bids {
        let size = rng.random_range(blo..=bhi);
        let bundle: Vec<ItemId> = match config.popularity {
            Popularity::Uniform => {
                pool.shuffle(&mut rng);
                pool[..size].iter().map(|&u| ItemId(u)).collect()
            }
            Popularity::Zipf { .. } => {
                // Weighted sampling without replacement by rejection.
                let mut chosen: Vec<u32> = Vec::with_capacity(size);
                while chosen.len() < size {
                    let mut pick = rng.random_range(0.0..total_w);
                    let mut item = 0usize;
                    for (u, &w) in weights.iter().enumerate() {
                        if pick < w {
                            item = u;
                            break;
                        }
                        pick -= w;
                    }
                    if !chosen.contains(&(item as u32)) {
                        chosen.push(item as u32);
                    }
                }
                chosen.into_iter().map(ItemId).collect()
            }
        };
        let (vlo, vhi) = config.value_per_item;
        let value = bundle.len() as f64 * rng.random_range(vlo..=vhi);
        bids.push(Bid::new(bundle, value));
    }
    AuctionInstance::new(multiplicities, bids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meets_multiplicity_bound() {
        let config = RandomAuctionConfig::default();
        let a = random_auction(&config);
        assert_eq!(a.num_bids(), 200);
        assert!(a.meets_large_multiplicity_bound(config.epsilon_target));
    }

    #[test]
    fn bundle_sizes_in_range() {
        let a = random_auction(&RandomAuctionConfig {
            bundle_size: (2, 4),
            ..Default::default()
        });
        for bid in a.bids() {
            assert!(bid.size() >= 2 && bid.size() <= 4);
        }
    }

    #[test]
    fn zipf_concentrates_on_hot_items() {
        let a = random_auction(&RandomAuctionConfig {
            popularity: Popularity::Zipf { s: 1.5 },
            bids: 400,
            seed: 3,
            ..Default::default()
        });
        let mut counts = vec![0usize; a.num_items()];
        for bid in a.bids() {
            for u in &bid.bundle {
                counts[u.index()] += 1;
            }
        }
        // item 0 must be far hotter than the median item
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[a.num_items() / 2];
        assert!(
            counts[0] > median * 3,
            "item 0 count {} vs median {median}",
            counts[0]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let config = RandomAuctionConfig::default();
        let a = random_auction(&config);
        let b = random_auction(&config);
        assert_eq!(a.num_bids(), b.num_bids());
        for (x, y) in a.bids().iter().zip(b.bids()) {
            assert_eq!(x, y);
        }
    }
}
