//! Random UFP workloads in the large-capacity regime.
//!
//! Generators guarantee the theorem's precondition `B ≥ ln(m)/ε²` for a
//! caller-chosen target ε, so experiments can sweep ε and stay inside the
//! regime the guarantees cover. Endpoints are rejection-sampled to be
//! connected, so every request is routable in the uncongested network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::{Request, UfpInstance};
use ufp_netgraph::generators;
use ufp_netgraph::graph::Graph;

use crate::endpoints::EndpointSampler;

/// How request values relate to demands.
#[derive(Clone, Copy, Debug)]
pub enum ValueModel {
    /// Values uniform in the range, independent of demand.
    Uniform(f64, f64),
    /// Value = demand × factor, factor uniform in the range (models
    /// per-bandwidth pricing).
    PerUnitDemand(f64, f64),
    /// Pareto-like heavy tail: `lo / u^s` for uniform `u ∈ (0,1]`,
    /// truncated at `100·lo` (a few whales, many minnows).
    HeavyTail {
        /// Scale (minimum value).
        lo: f64,
        /// Tail exponent (larger = heavier).
        s: f64,
    },
}

impl ValueModel {
    /// Draw one value for a request of the given demand.
    pub fn sample_value<R: Rng>(&self, demand: f64, rng: &mut R) -> f64 {
        match *self {
            ValueModel::Uniform(lo, hi) => rng.random_range(lo..=hi),
            ValueModel::PerUnitDemand(lo, hi) => demand * rng.random_range(lo..=hi),
            ValueModel::HeavyTail { lo, s } => {
                let u: f64 = rng.random_range(1e-4..1.0);
                (lo / u.powf(s)).min(lo * 100.0)
            }
        }
    }
}

/// Configuration for [`random_ufp`].
#[derive(Clone, Copy, Debug)]
pub struct RandomUfpConfig {
    /// Vertices in the random digraph.
    pub nodes: usize,
    /// Arcs in the random digraph.
    pub edges: usize,
    /// Number of requests.
    pub requests: usize,
    /// The ε whose `B ≥ ln(m)/ε²` precondition the instance satisfies.
    pub epsilon_target: f64,
    /// Demand range within `(0, 1]`.
    pub demand_range: (f64, f64),
    /// Value model.
    pub values: ValueModel,
    /// When set, all requests are drawn from this many fixed
    /// source/target "hotspot" pairs instead of uniformly random
    /// endpoints — concentrating demand so the capacity regime (and the
    /// paper's guard) actually binds.
    pub hotspot_pairs: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomUfpConfig {
    fn default() -> Self {
        RandomUfpConfig {
            nodes: 30,
            edges: 150,
            requests: 200,
            epsilon_target: 0.25,
            demand_range: (0.2, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            hotspot_pairs: None,
            seed: 1,
        }
    }
}

/// Minimum capacity needed for `B ≥ ln(m)/ε²` with `m` edges.
pub fn required_b(num_edges: usize, epsilon: f64) -> f64 {
    (num_edges.max(2) as f64).ln() / (epsilon * epsilon)
}

/// Generate a random large-capacity UFP instance on a `G(n,m)` digraph.
pub fn random_ufp(config: &RandomUfpConfig) -> UfpInstance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let b = required_b(config.edges, config.epsilon_target).ceil();
    // Capacities in [B, 2B]: the minimum meets the bound, variation keeps
    // the instance non-degenerate.
    let graph = generators::gnm_digraph(config.nodes, config.edges, (b, 2.0 * b), &mut rng);
    let requests = sample_requests(&graph, config, &mut rng);
    UfpInstance::new(graph, requests)
}

/// Same demand/value machinery on an undirected grid (the "ISP backbone"
/// shape from the routing example).
pub fn random_grid_ufp(
    rows: usize,
    cols: usize,
    requests: usize,
    epsilon_target: f64,
    seed: u64,
) -> UfpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 2 * rows * cols - rows - cols;
    let b = required_b(m, epsilon_target).ceil();
    let graph = generators::grid(rows, cols, b);
    let config = RandomUfpConfig {
        nodes: rows * cols,
        edges: m,
        requests,
        epsilon_target,
        ..Default::default()
    };
    let requests = sample_requests(&graph, &config, &mut rng);
    UfpInstance::new(graph, requests)
}

fn sample_requests<R: Rng>(graph: &Graph, config: &RandomUfpConfig, rng: &mut R) -> Vec<Request> {
    let (dlo, dhi) = config.demand_range;
    assert!(
        0.0 < dlo && dlo <= dhi && dhi <= 1.0,
        "demands must lie in (0,1]"
    );
    let mut sampler = EndpointSampler::new(graph, config.hotspot_pairs);
    let mut requests = Vec::with_capacity(config.requests);
    while requests.len() < config.requests {
        let (src, dst) = sampler.sample(graph, rng);
        let demand = if dlo == dhi {
            dlo
        } else {
            rng.random_range(dlo..=dhi)
        };
        let value = config.values.sample_value(demand, rng);
        requests.push(Request::new(src, dst, demand, value));
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::bfs;

    #[test]
    fn meets_the_capacity_bound() {
        let config = RandomUfpConfig::default();
        let inst = random_ufp(&config);
        assert_eq!(inst.num_requests(), 200);
        assert!(inst.is_normalized());
        assert!(
            inst.meets_large_capacity_bound(config.epsilon_target),
            "B = {} below ln(m)/eps^2 = {}",
            inst.bound_b(),
            required_b(config.edges, config.epsilon_target)
        );
    }

    #[test]
    fn all_requests_connected() {
        let inst = random_ufp(&RandomUfpConfig::default());
        for r in inst.requests() {
            assert!(bfs::is_reachable(inst.graph(), r.src, r.dst));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = RandomUfpConfig::default();
        let a = random_ufp(&config);
        let b = random_ufp(&config);
        assert_eq!(a.requests(), b.requests());
        let c = random_ufp(&RandomUfpConfig { seed: 2, ..config });
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn grid_workload() {
        let inst = random_grid_ufp(4, 5, 50, 0.3, 9);
        assert_eq!(inst.num_requests(), 50);
        assert!(inst.meets_large_capacity_bound(0.3));
        assert_eq!(inst.graph().num_edges(), 2 * 4 * 5 - 4 - 5);
    }

    #[test]
    fn hotspot_mode_concentrates_pairs() {
        let inst = random_ufp(&RandomUfpConfig {
            hotspot_pairs: Some(3),
            requests: 100,
            ..Default::default()
        });
        let mut pairs = std::collections::HashSet::new();
        for r in inst.requests() {
            pairs.insert((r.src, r.dst));
        }
        assert!(
            pairs.len() <= 3,
            "expected at most 3 hotspot pairs, got {}",
            pairs.len()
        );
        for r in inst.requests() {
            assert!(bfs::is_reachable(inst.graph(), r.src, r.dst));
        }
    }

    #[test]
    fn value_models_produce_positive_values() {
        for values in [
            ValueModel::Uniform(0.1, 1.0),
            ValueModel::PerUnitDemand(1.0, 3.0),
            ValueModel::HeavyTail { lo: 0.5, s: 1.2 },
        ] {
            let inst = random_ufp(&RandomUfpConfig {
                values,
                requests: 50,
                ..Default::default()
            });
            for r in inst.requests() {
                assert!(r.value > 0.0 && r.value.is_finite());
            }
        }
    }
}
